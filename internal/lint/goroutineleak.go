package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

var analyzerGoroutineleak = &Analyzer{
	Name: "goroutineleak",
	Doc: "a goroutine that sends or receives on a locally-created " +
		"unbuffered channel must have an escape route — a select with a " +
		"default clause or a second case (ctx.Done/stop channel); a bare " +
		"blocking op leaks the goroutine forever when its peer never " +
		"arrives (the shard-mailbox and worker-pool shapes pass: bounded " +
		"mailboxes are buffered and their loops select on a stop channel)",
	Run: func(p *Pass) {
		forEachFuncBody(p, func(name string, body *ast.BlockStmt) {
			checkGoroutineLeak(p, body)
		})
	},
}

// unbufferedChans collects the objects of channels this body provably
// creates unbuffered: `ch := make(chan T)` or `make(chan T, 0)`.
// Channels received as parameters or fields have unknown capacity and
// are not tracked — the rule only fires on locally-sealed shapes.
func unbufferedChans(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "make" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		if t := p.Info.TypeOf(call.Args[0]); t == nil {
			return
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		if len(call.Args) >= 2 {
			tv, ok := p.Info.Types[call.Args[1]]
			if !ok || tv.Value == nil {
				return // non-constant capacity: assume buffered
			}
			if cap, ok := constant.Int64Val(tv.Value); !ok || cap != 0 {
				return
			}
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.FuncLit:
			return false // separate analysis root
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					record(m.Lhs[i], m.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(m.Names) == len(m.Values) {
				for i := range m.Names {
					record(m.Names[i], m.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// closedChans collects the channels this body closes anywhere (including
// inside literals and goroutines). A close releases blocked receivers and
// rangers, so the creator closing the channel is an escape route for them
// — the start-gate pattern: workers park on <-gate, close(gate) fires all.
func closedChans(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "close" {
			return true
		}
		if _, isBuiltin := p.useOf(fn).(*types.Builtin); !isBuiltin {
			return true
		}
		if obj := chanObjOf(p, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// chanObjOf resolves a channel expression to its object when it is a
// plain identifier.
func chanObjOf(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.Uses[id]
}

// selectEscapes reports whether the select statement offers an escape
// from a blocked comm: a default clause, or at least two comm cases
// (one can be a stop/ctx.Done channel that releases the goroutine).
func selectEscapes(sel *ast.SelectStmt) bool {
	comms := 0
	for _, cc := range sel.Body.List {
		if cc.(*ast.CommClause).Comm == nil {
			return true // default: never parks
		}
		comms++
	}
	return comms >= 2
}

func checkGoroutineLeak(p *Pass, body *ast.BlockStmt) {
	unbuffered := unbufferedChans(p, body)
	if len(unbuffered) == 0 {
		return
	}
	closed := closedChans(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // opaque callee: capacity contract unknowable here
		}
		checkGoroutineBody(p, lit.Body, unbuffered, closed, nil)
		return true
	})
}

// checkGoroutineBody walks a goroutine literal's body, flagging blocking
// ops on the tracked unbuffered channels that sit outside any escaping
// select. Receives and ranges on channels the creator closes are exempt
// (the close releases them). selStack carries the enclosing selects.
func checkGoroutineBody(p *Pass, body ast.Node, unbuffered, closed map[types.Object]bool, selStack []*ast.SelectStmt) {
	escaped := func() bool {
		for _, s := range selStack {
			if selectEscapes(s) {
				return true
			}
		}
		return false
	}
	report := func(pos ast.Node, op, name string) {
		if escaped() {
			return
		}
		p.Reportf(pos.Pos(), "goroutine %s on unbuffered channel %s has no select-with-default/second-case escape; if the other side never arrives the goroutine leaks forever — add a ctx.Done()/stop case or give the channel capacity", op, name)
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch m := n.(type) {
		case nil:
			return
		case *ast.SelectStmt:
			selStack = append(selStack, m)
			for _, cc := range m.Body.List {
				clause := cc.(*ast.CommClause)
				if clause.Comm != nil {
					walk(clause.Comm)
				}
				for _, s := range clause.Body {
					walk(s)
				}
			}
			selStack = selStack[:len(selStack)-1]
			return
		case *ast.SendStmt:
			if obj := chanObjOf(p, m.Chan); obj != nil && unbuffered[obj] {
				report(m, "sends", obj.Name())
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				if obj := chanObjOf(p, m.X); obj != nil && unbuffered[obj] && !closed[obj] {
					report(m, "receives", obj.Name())
				}
			}
		case *ast.RangeStmt:
			if obj := chanObjOf(p, m.X); obj != nil && unbuffered[obj] && !closed[obj] {
				// Ranging an unbuffered channel is fine only if someone
				// closes it; without a close or an escape the goroutine
				// parks forever.
				report(m, "ranges", obj.Name())
			}
		}
		// Generic descent (nested literals included: they still run
		// inside this goroutine's lifetime w.r.t. the leak).
		var children []ast.Node
		ast.Inspect(n, func(k ast.Node) bool {
			if k == nil || k == n {
				return true
			}
			children = append(children, k)
			return false
		})
		for _, c := range children {
			walk(c)
		}
	}
	walk(body)
}
