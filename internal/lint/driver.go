package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Exit codes of the cabd-lint driver.
const (
	ExitClean = 0 // no diagnostics
	ExitDiags = 1 // at least one diagnostic
	ExitError = 2 // usage, load or type-check failure
)

// Main is the cabd-lint entry point, factored out of cmd/cabd-lint so
// tests can drive the whole binary in-process. args are the command-line
// arguments after the program name; the return value is the process exit
// code.
//
// Usage: cabd-lint [-C dir] [-rules r1,r2] [-json] [packages]
// Packages default to ./... relative to the module root.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cabd-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root directory to lint")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := fs.Bool("list", false, "list registered rules and exit")
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	analyzers, err := Select(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "cabd-lint: no packages match %v\n", patterns)
		return ExitError
	}

	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
			return ExitError
		}
		if len(pkg.TypeErrors) > 0 {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "cabd-lint: %s: %v\n", path, terr)
			}
			return ExitError
		}
		diags = append(diags, RunPackage(pkg, analyzers)...)
	}

	// Report paths relative to the linted module so output is stable
	// across checkouts.
	if absRoot, aerr := filepath.Abs(*dir); aerr == nil {
		for i := range diags {
			if rel, rerr := filepath.Rel(absRoot, diags[i].Path); rerr == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Path = filepath.ToSlash(rel)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "cabd-lint: %d finding(s) across %d package(s)\n", len(diags), len(paths))
		}
		return ExitDiags
	}
	return ExitClean
}
