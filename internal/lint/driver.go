package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Exit codes of the cabd-lint driver.
const (
	ExitClean = 0 // no diagnostics
	ExitDiags = 1 // at least one diagnostic
	ExitError = 2 // usage, load or type-check failure
)

// Main is the cabd-lint entry point, factored out of cmd/cabd-lint so
// tests can drive the whole binary in-process. args are the command-line
// arguments after the program name; the return value is the process exit
// code.
//
// Usage: cabd-lint [-C dir] [-rules r1,r2] [-json] [-parallel n] [packages]
// Packages default to ./... relative to the module root.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cabd-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root directory to lint")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := fs.Bool("list", false, "list registered rules and exit")
	par := fs.Int("parallel", runtime.GOMAXPROCS(0), "packages linted concurrently (1 = sequential); output is identical at any width")
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	analyzers, err := Select(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
		return ExitError
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "cabd-lint: no packages match %v\n", patterns)
		return ExitError
	}

	results := lintPackages(loader, *dir, paths, analyzers, *par)

	// Merge in path order: the output (and the error chosen when several
	// packages fail) is byte-identical at any -parallel width.
	var diags []Diagnostic
	for _, r := range results {
		if len(r.errs) > 0 {
			for _, line := range r.errs {
				fmt.Fprint(stderr, line)
			}
			return ExitError
		}
		diags = append(diags, r.diags...)
	}

	// Report paths relative to the linted module so output is stable
	// across checkouts.
	if absRoot, aerr := filepath.Abs(*dir); aerr == nil {
		for i := range diags {
			if rel, rerr := filepath.Rel(absRoot, diags[i].Path); rerr == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Path = filepath.ToSlash(rel)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "cabd-lint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "cabd-lint: %d finding(s) across %d package(s)\n", len(diags), len(paths))
		}
		return ExitDiags
	}
	return ExitClean
}

// pkgResult is one package's lint outcome, slotted by path index so the
// merge happens in deterministic path order regardless of which worker
// finished first.
type pkgResult struct {
	diags []Diagnostic
	errs  []string // pre-formatted stderr lines; non-empty means ExitError
}

// lintPackages loads and lints every path, fanning the packages out
// across par workers. The Loader is not safe for concurrent use (its
// caches and the source importer are unsynchronized), so the first
// worker reuses the caller's loader and every additional worker builds
// its own over the same module root. Unlike the sequential walk, a
// failing package does not short-circuit the others — the merge in Main
// reports the first error in path order, so the visible output is
// unchanged.
func lintPackages(loader *Loader, dir string, paths []string, analyzers []*Analyzer, par int) []pkgResult {
	if par < 1 {
		par = 1
	}
	if par > len(paths) {
		par = len(paths)
	}
	results := make([]pkgResult, len(paths))
	idx := make(chan int, len(paths))
	for i := range paths {
		idx <- i
	}
	close(idx)

	run := func(l *Loader) {
		for i := range idx {
			path := paths[i]
			pkg, err := l.Load(path)
			if err != nil {
				results[i].errs = []string{fmt.Sprintf("cabd-lint: %v\n", err)}
				continue
			}
			if len(pkg.TypeErrors) > 0 {
				for _, terr := range pkg.TypeErrors {
					results[i].errs = append(results[i].errs, fmt.Sprintf("cabd-lint: %s: %v\n", path, terr))
				}
				continue
			}
			results[i].diags = RunPackage(pkg, analyzers)
		}
	}

	if par == 1 {
		run(loader)
		return results
	}
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			l := loader
			if !first {
				var err error
				if l, err = NewLoader(dir); err != nil {
					// The caller's NewLoader over the same dir succeeded, so
					// this is out-of-band (e.g. the module vanished mid-run);
					// drain our share of the queue with the error attached.
					for i := range idx {
						results[i].errs = []string{fmt.Sprintf("cabd-lint: %v\n", err)}
					}
					return
				}
			}
			run(l)
		}(w == 0)
	}
	wg.Wait()
	return results
}
