package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// panicWrapperType is the type every recovered panic must flow into
// before it crosses an API boundary (see robust.go).
const panicWrapperType = "PanicError"

// typeName returns the bare name of a composite literal's type
// expression ("PanicError" for both PanicError{...} and cabd.PanicError{...},
// including pointer literals like &PanicError{...}).
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.StarExpr:
		return typeName(t.X)
	}
	return ""
}

var analyzerRecoverwrap = &Analyzer{
	Name: "recoverwrap",
	Doc: "every recover() in library code must wrap the recovered value " +
		"in a *PanicError (series index, value, stack) so panic isolation " +
		"stays observable — a recover that swallows the value silently " +
		"hides pipeline crashes",
	SkipMain: true,
	Run: func(p *Pass) {
		// Collect the function literals / declarations that build a
		// PanicError anywhere inside, then require every recover() call to
		// sit within one of them.
		p.Inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			if b, ok := p.useOf(id).(*types.Builtin); !ok || b.Name() != "recover" {
				return true
			}
			if !p.recoverWrapped(call) {
				p.Reportf(call.Pos(), "recover() must flow the recovered value into a *%s; a panic swallowed here never reaches the containment counters", panicWrapperType)
			}
			return true
		})
	},
}

// recoverWrapped reports whether the innermost function enclosing the
// recover call constructs a PanicError composite literal.
func (p *Pass) recoverWrapped(call *ast.CallExpr) bool {
	var enclosing ast.Node
	for _, f := range p.Pkg.Files {
		path := nodePath(f, call.Pos())
		for i := len(path) - 1; i >= 0; i-- {
			switch fn := path[i].(type) {
			case *ast.FuncLit:
				enclosing = fn
			case *ast.FuncDecl:
				enclosing = fn
			}
			if enclosing != nil {
				break
			}
		}
		if enclosing != nil {
			break
		}
	}
	if enclosing == nil {
		return false
	}
	wrapped := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok && typeName(cl.Type) == panicWrapperType {
			wrapped = true
		}
		return !wrapped
	})
	return wrapped
}

// nodePath returns the chain of nodes from root down to the node
// containing target (innermost last).
func nodePath(root ast.Node, target token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= target && target < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}
