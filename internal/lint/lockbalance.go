package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cabd/internal/lint/cfg"
	"cabd/internal/lint/dataflow"
)

// Lock-fact bits: which mode of the mutex is held.
const (
	lockWrite uint8 = 1 << iota // Lock .. Unlock
	lockRead                    // RLock .. RUnlock
)

// lockEvent is one ordered occurrence inside a basic block that the
// lockbalance transfer or reporting pass cares about.
type lockEvent struct {
	pos  token.Pos
	kind lockEventKind
	key  string // lock expression ("s.mu") for acquire/release
	what string // human description for blocking/ctx-call events
	bit  uint8  // lockWrite or lockRead for acquire/release
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evBlocking // channel send/receive/range that can park the goroutine
	evCtxCall  // call into the DetectCtx family (unbounded work)
)

var analyzerLockbalance = &Analyzer{
	Name: "lockbalance",
	Doc: "every sync.Mutex/RWMutex Lock must be Unlocked on all paths to " +
		"return (defer-aware, via the CFG dataflow pass), and no blocking " +
		"channel operation or ...Ctx call may run while the lock is held — " +
		"a parked or long-running critical section stalls every other " +
		"goroutine on the mutex",
	Run: func(p *Pass) {
		forEachFuncBody(p, func(name string, body *ast.BlockStmt) {
			checkLockBalance(p, body)
		})
	},
}

// forEachFuncBody visits every function body of the package: named
// declarations and function literals, each as its own intraprocedural
// analysis root (a literal's body is excluded from its enclosing
// function's walk by the CFG builder treating it as a plain node).
func forEachFuncBody(p *Pass, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Body)
				}
			case *ast.FuncLit:
				fn("func literal", d.Body)
			}
			return true
		})
	}
}

// mutexMethod resolves a call's callee to a sync.Mutex/RWMutex lock
// method and the lock key it operates on; ok is false for anything else.
func mutexMethod(p *Pass, call *ast.CallExpr) (key string, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := p.useOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	key = exprString(sel.X)
	if key == "" {
		return "", "", false // dynamic lock expression; not trackable
	}
	return key, fn.Name(), true
}

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

// nonBlockingComms collects the source ranges of comm statements that
// belong to a select with a default clause — those operations never
// park the goroutine.
func nonBlockingComms(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cc := range sel.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cc := range sel.Body.List {
			if comm := cc.(*ast.CommClause).Comm; comm != nil {
				out = append(out, posRange{comm.Pos(), comm.End()})
			}
		}
		return true
	})
	return out
}

// lockEvents extracts the ordered lock-relevant events of one CFG block.
// Function literals nested in the block run at some other time and are
// skipped — they are separate analysis roots.
func lockEvents(p *Pass, b *cfg.Block, exempt []posRange) []lockEvent {
	var events []lockEvent
	isExempt := func(pos token.Pos) bool {
		for _, r := range exempt {
			if r.contains(pos) {
				return true
			}
		}
		return false
	}
	for _, node := range b.Nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			switch m := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// Deferred releases run at exit, not here; they are
				// credited by deferredReleases instead.
				return false
			case *ast.CallExpr:
				if key, name, ok := mutexMethod(p, m); ok {
					switch name {
					case "Lock":
						events = append(events, lockEvent{m.Pos(), evAcquire, key, "", lockWrite})
					case "RLock":
						events = append(events, lockEvent{m.Pos(), evAcquire, key, "", lockRead})
					case "Unlock":
						events = append(events, lockEvent{m.Pos(), evRelease, key, "", lockWrite})
					case "RUnlock":
						events = append(events, lockEvent{m.Pos(), evRelease, key, "", lockRead})
					}
					return true
				}
				if name := calleeName(m); strings.HasSuffix(name, "Ctx") && name != "Ctx" {
					events = append(events, lockEvent{m.Pos(), evCtxCall, "", name, 0})
				}
			case *ast.SendStmt:
				if !isExempt(m.Pos()) {
					events = append(events, lockEvent{m.Pos(), evBlocking, "", "channel send", 0})
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !isExempt(m.Pos()) {
					events = append(events, lockEvent{m.Pos(), evBlocking, "", "channel receive", 0})
				}
			}
			return true
		})
		// A range.head block's node is the ranged expression; over a
		// channel it parks until the channel closes.
		if b.Kind == "range.head" {
			if e, isExpr := node.(ast.Expr); isExpr {
				if t := p.Info.TypeOf(e); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						events = append(events, lockEvent{e.Pos(), evBlocking, "", "range over channel", 0})
					}
				}
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// calleeName returns the bare name of a call's callee ident/selector.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// deferredReleases scans the function's defer statements (including
// deferred function literals) for unlock calls, returning the released
// bits per lock key — a deferred release runs at every exit.
func deferredReleases(p *Pass, g *cfg.Graph) map[string]uint8 {
	released := map[string]uint8{}
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, name, ok := mutexMethod(p, call); ok {
				switch name {
				case "Unlock":
					released[key] |= lockWrite
				case "RUnlock":
					released[key] |= lockRead
				}
			}
			return true
		})
	}
	return released
}

func checkLockBalance(p *Pass, body *ast.BlockStmt) {
	// Fast path: a function that never locks needs no CFG.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := mutexMethod(p, call); ok {
				touches = true
				return false
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	g := cfg.Build(body)
	exempt := nonBlockingComms(body)
	events := make([][]lockEvent, len(g.Blocks))
	for i, b := range g.Blocks {
		events[i] = lockEvents(p, b, exempt)
	}
	transfer := func(b *cfg.Block, in dataflow.Bits) dataflow.Bits {
		out := in
		for _, e := range events[b.Index] {
			switch e.kind {
			case evAcquire:
				out = out.With(e.key, out[e.key]|e.bit)
			case evRelease:
				out = out.With(e.key, out[e.key]&^e.bit)
			}
		}
		return out
	}
	res := dataflow.Forward[dataflow.Bits](g, dataflow.BitsLattice{}, dataflow.Bits{}, transfer)

	released := deferredReleases(p, g)

	// Reporting pass 1: blocking operations and ...Ctx calls inside a
	// critical section, replayed once over the fixed-point In facts.
	for i, b := range g.Blocks {
		cur := res.In[i]
		if cur == nil && b != g.Entry {
			continue // unreachable
		}
		for _, e := range events[i] {
			switch e.kind {
			case evAcquire:
				cur = cur.With(e.key, cur[e.key]|e.bit)
			case evRelease:
				cur = cur.With(e.key, cur[e.key]&^e.bit)
			case evBlocking, evCtxCall:
				for _, key := range cur.Keys() {
					if cur[key] == 0 {
						continue
					}
					what := e.what
					if e.kind == evCtxCall {
						what = "call to " + e.what
					}
					p.Reportf(e.pos, "%s while %s is held can stall every goroutine contending for the lock; release it first (or hand the work to a channel outside the critical section)", what, key)
				}
			}
		}
	}

	// Reporting pass 2: locks still held at function exit with no
	// deferred release.
	exitFacts := res.In[g.Exit.Index]
	for _, key := range exitFacts.Keys() {
		held := exitFacts[key] &^ released[key]
		if held == 0 {
			continue
		}
		pos := firstAcquirePos(events, key, held)
		mode := "Lock"
		if held&lockWrite == 0 {
			mode = "RLock"
		}
		p.Reportf(pos, "%s.%s is not released on every path to return; unlock before each return or `defer %s.Unlock()` right after acquiring", key, mode, key)
	}
}

// firstAcquirePos finds the earliest acquire of key with one of the
// leaked bits, for diagnostic anchoring.
func firstAcquirePos(events [][]lockEvent, key string, bits uint8) token.Pos {
	best := token.Pos(0)
	for _, evs := range events {
		for _, e := range evs {
			if e.kind == evAcquire && e.key == key && e.bit&bits != 0 {
				if best == 0 || e.pos < best {
					best = e.pos
				}
			}
		}
	}
	return best
}
