package lint

import (
	"go/ast"
	"go/types"
)

// seededrandBanned are the math/rand top-level functions backed by the
// package-global source. Results must come from a rand.Rand seeded by
// Options.Seed, or the fixed-seed determinism suite cannot hold.
var seededrandBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings of the same global-source calls.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

var analyzerSeededrand = &Analyzer{
	Name: "seededrand",
	Doc: "library code must draw randomness from an explicitly seeded " +
		"rand.Rand (Options.Seed), never the math/rand global source — " +
		"unseeded draws break fixed-seed reproducibility of Results",
	SkipMain: true,
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.useOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			// Methods on *rand.Rand carry their own source; only the
			// package-level (receiver-less) functions hit the global one.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if seededrandBanned[fn.Name()] {
				p.Reportf(sel.Pos(), "rand.%s uses the package-global source; draw from a rand.Rand seeded via Options.Seed", fn.Name())
			}
			return true
		})
	},
}
