package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockBanned are the time-package functions that read the process
// wall clock. time.Duration arithmetic stays legal — only *reading* time
// outside the injectable obs.Clock breaks the FakeClock test harness.
var wallclockBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// wallclockSleepBanned are the time-package sleep/timer primitives that
// pace execution off the wall clock. They are additionally banned in the
// collector packages (internal/agent/...), where every pause — poll
// pacing and retry backoff alike — must go through the injectable
// obs.SleepFunc so schedules are exactly assertable in tests. The
// faultproxy subpackage is exempt: its faults are deliberately timer-free
// (the victim's context bounds their duration).
var wallclockSleepBanned = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// agentScoped reports whether the sleep/timer ban applies to a package.
func agentScoped(path string) bool {
	if !strings.Contains(path, "internal/agent") {
		return false
	}
	return !strings.HasSuffix(path, "/faultproxy")
}

var analyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc: "library code must measure time through the injectable obs.Clock, " +
		"never time.Now/Since/Until directly; internal/obs (the Clock's home) " +
		"and package main are exempt. In internal/agent packages the ban " +
		"extends to time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc — " +
		"pacing goes through obs.SleepFunc (faultproxy exempt)",
	SkipMain: true,
	Run: func(p *Pass) {
		// internal/obs implements the Wall clock; it is the one library
		// package allowed to touch time.Now.
		if strings.HasSuffix(p.Pkg.ImportPath, "internal/obs") {
			return
		}
		sleepBan := agentScoped(p.Pkg.ImportPath)
		p.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.useOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallclockBanned[fn.Name()] {
				p.Reportf(sel.Pos(), "direct time.%s call reads the wall clock; thread obs.Clock (obs.Wall in production, FakeClock in tests)", fn.Name())
			} else if sleepBan && wallclockSleepBanned[fn.Name()] {
				p.Reportf(sel.Pos(), "time.%s paces agent code off the wall clock; sleep through the injectable obs.SleepFunc so backoff and poll schedules are exactly testable", fn.Name())
			}
			return true
		})
	},
}
