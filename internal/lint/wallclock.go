package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockBanned are the time-package functions that read the process
// wall clock. time.Duration arithmetic stays legal — only *reading* time
// outside the injectable obs.Clock breaks the FakeClock test harness.
var wallclockBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

var analyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc: "library code must measure time through the injectable obs.Clock, " +
		"never time.Now/Since/Until directly; internal/obs (the Clock's home) " +
		"and package main are exempt",
	SkipMain: true,
	Run: func(p *Pass) {
		// internal/obs implements the Wall clock; it is the one library
		// package allowed to touch time.Now.
		if strings.HasSuffix(p.Pkg.ImportPath, "internal/obs") {
			return
		}
		p.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.useOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallclockBanned[fn.Name()] {
				p.Reportf(sel.Pos(), "direct time.%s call reads the wall clock; thread obs.Clock (obs.Wall in production, FakeClock in tests)", fn.Name())
			}
			return true
		})
	},
}
