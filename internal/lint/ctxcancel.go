package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"cabd/internal/lint/cfg"
	"cabd/internal/lint/dataflow"
)

// Cancel-fact bits.
const (
	cancelPending uint8 = 1 << iota // context created, cancel not yet called on this path
	cancelCalled
)

// ctxMakers are the context constructors whose second result is a
// CancelFunc that must not leak.
var ctxMakers = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

var analyzerCtxcancel = &Analyzer{
	Name: "ctxcancel",
	Doc: "the cancel func returned by context.WithCancel/WithTimeout/" +
		"WithDeadline must be called on every path to return (defer " +
		"preferred) or handed off; a dropped cancel leaks the context's " +
		"timer and its done-channel watchers until the parent ends",
	Run: func(p *Pass) {
		forEachFuncBody(p, func(name string, body *ast.BlockStmt) {
			checkCtxCancel(p, body)
		})
	},
}

// cancelVar is one tracked cancel function variable.
type cancelVar struct {
	obj    types.Object
	key    string
	maker  string // constructor name, for the message
	assign token.Pos
}

// ctxMakerCall reports whether call is one of the context constructors,
// returning its name.
func ctxMakerCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.useOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !ctxMakers[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// collectCancelVars finds the cancel-func variables this function owns:
// the second LHS of a `ctx, cancel := context.WithX(...)` assignment.
// A blank second LHS is reported immediately — the cancel is lost at
// birth. Non-ident LHS (a field, an index) is treated as handed off.
func collectCancelVars(p *Pass, body *ast.BlockStmt) []cancelVar {
	var out []cancelVar
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested literal bodies are their own analysis roots.
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		maker, ok := ctxMakerCall(p, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true // stored into a field etc.: ownership handed off
		}
		if id.Name == "_" {
			p.Reportf(id.Pos(), "the cancel func from context.%s is discarded; its timer and watchers leak until the parent context ends — assign it and call it (defer preferred)", maker)
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		out = append(out, cancelVar{
			obj:    obj,
			key:    fmt.Sprintf("%s@%d", id.Name, obj.Pos()),
			maker:  maker,
			assign: as.Pos(),
		})
		return true
	})
	return out
}

// cancelDisposition classifies how a cancel var is used in the body.
type cancelDisposition struct {
	deferred bool // defer cancel() or a deferred literal calling it
	escapes  bool // passed on, stored, returned, or captured: managed elsewhere
}

func classifyCancelUse(p *Pass, body *ast.BlockStmt, v cancelVar) cancelDisposition {
	var disp cancelDisposition
	ast.Inspect(body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.DeferStmt:
			ast.Inspect(m.Call, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok && p.Info.Uses[id] == v.obj {
					disp.deferred = true
				}
				return true
			})
			return false
		case *ast.FuncLit:
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok && p.Info.Uses[id] == v.obj {
					// Captured by a goroutine or stored callback: the
					// literal owns the call now.
					disp.escapes = true
				}
				return true
			})
			return false
		case *ast.CompositeLit:
			// Stored into a struct/slice/map literal: whoever holds the
			// value owns the call now (e.g. a session keeping its cancel).
			ast.Inspect(m, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok && p.Info.Uses[id] == v.obj {
					disp.escapes = true
				}
				return true
			})
			return false
		case *ast.CallExpr:
			// cancel() itself is fine; cancel as an *argument* escapes.
			for _, arg := range m.Args {
				escaped := false
				ast.Inspect(arg, func(k ast.Node) bool {
					if id, ok := k.(*ast.Ident); ok && p.Info.Uses[id] == v.obj {
						escaped = true
					}
					return true
				})
				if escaped {
					disp.escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, r := range m.Rhs {
				id, ok := r.(*ast.Ident)
				if !ok || p.Info.Uses[id] != v.obj {
					continue
				}
				// `_ = cancel` only silences the compiler; the cancel is
				// still owned (and leakable) here.
				if i < len(m.Lhs) {
					if lhs, ok := m.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
						continue
					}
				}
				disp.escapes = true // re-assigned somewhere else
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				ast.Inspect(r, func(k ast.Node) bool {
					if id, ok := k.(*ast.Ident); ok && p.Info.Uses[id] == v.obj {
						disp.escapes = true
					}
					return true
				})
			}
		}
		return true
	})
	return disp
}

func checkCtxCancel(p *Pass, body *ast.BlockStmt) {
	vars := collectCancelVars(p, body)
	if len(vars) == 0 {
		return
	}
	var tracked []cancelVar
	for _, v := range vars {
		disp := classifyCancelUse(p, body, v)
		if disp.deferred || disp.escapes {
			continue
		}
		tracked = append(tracked, v)
	}
	if len(tracked) == 0 {
		return
	}

	g := cfg.Build(body)
	byObj := map[types.Object]cancelVar{}
	for _, v := range tracked {
		byObj[v.obj] = v
	}
	// Per-block event lists: assignment (pending) and call (called).
	type cEvent struct {
		pos  token.Pos
		key  string
		bits uint8
	}
	events := make([][]cEvent, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch m := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					if len(m.Lhs) == 2 {
						if id, ok := m.Lhs[1].(*ast.Ident); ok {
							obj := p.Info.Defs[id]
							if obj == nil {
								obj = p.Info.Uses[id]
							}
							if v, ok := byObj[obj]; ok {
								events[i] = append(events[i], cEvent{m.Pos(), v.key, cancelPending})
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := m.Fun.(*ast.Ident); ok {
						if v, ok := byObj[p.Info.Uses[id]]; ok {
							events[i] = append(events[i], cEvent{m.Pos(), v.key, cancelCalled})
						}
					}
				}
				return true
			})
		}
	}
	transfer := func(b *cfg.Block, in dataflow.Bits) dataflow.Bits {
		out := in
		for _, e := range events[b.Index] {
			if e.bits == cancelPending {
				out = out.With(e.key, cancelPending)
			} else {
				out = out.With(e.key, cancelCalled)
			}
		}
		return out
	}
	res := dataflow.Forward[dataflow.Bits](g, dataflow.BitsLattice{}, dataflow.Bits{}, transfer)
	exitFacts := res.In[g.Exit.Index]
	for _, v := range tracked {
		if exitFacts[v.key]&cancelPending != 0 {
			p.Reportf(v.assign, "the cancel func from context.%s is not called on every path to return; `defer cancel()` right after this assignment (or cancel before each early return)", v.maker)
		}
	}
}
