// Package multi extends CABD to multi-dimensional time series — the
// direction the paper's conclusion singles out as future work ("we plan
// to study how our techniques apply on multi-dimensional times series").
//
// The extension keeps every stage of the univariate pipeline and
// generalizes the geometry:
//
//   - points embed as (standardized index, standardized value_1, ...,
//     standardized value_d) and the INN is computed over that space with
//     the same per-offset mutual-rank bound and 5% prune;
//   - candidate estimation takes, per point, the strongest per-dimension
//     robust z-score of the absolute second difference;
//   - the magnitude and asymmetry features are dimension-free already;
//     the correlation score symbolizes the window of the dimension that
//     triggered the candidate; the variance score uses the total
//     (trace) standard deviation of the window;
//   - score evaluation, the GMM/rule bootstrap, the random forest and
//     the CAL loop are reused verbatim from internal/core.
package multi

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cabd/internal/core"
	"cabd/internal/inn"
	"cabd/internal/obs"
	"cabd/internal/sax"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Series is a d-dimensional, equally spaced time series: Dims holds d
// slices of equal length n. Labels, when non-nil, carries per-point
// ground truth shared across dimensions.
type Series struct {
	Name   string
	Dims   [][]float64
	Labels []series.Label
}

// NewSeries wraps dims (which must be non-empty and of equal lengths).
func NewSeries(name string, dims [][]float64) *Series {
	return &Series{Name: name, Dims: dims}
}

// Len returns the number of time steps (0 for an empty series).
func (s *Series) Len() int {
	if len(s.Dims) == 0 {
		return 0
	}
	return len(s.Dims[0])
}

// D returns the number of dimensions.
func (s *Series) D() int { return len(s.Dims) }

// LabelAt returns the ground-truth label of index i (Normal when
// unlabeled or out of range).
func (s *Series) LabelAt(i int) series.Label {
	if s.Labels == nil || i < 0 || i >= len(s.Labels) {
		return series.Normal
	}
	return s.Labels[i]
}

// AnomalyIndices returns the indices labeled as anomalies.
func (s *Series) AnomalyIndices() []int {
	var out []int
	for i, l := range s.Labels {
		if l.IsAnomaly() {
			out = append(out, i)
		}
	}
	return out
}

// ChangePointIndices returns the indices labeled as change points.
func (s *Series) ChangePointIndices() []int {
	var out []int
	for i, l := range s.Labels {
		if l == series.ChangePoint {
			out = append(out, i)
		}
	}
	return out
}

// Detector runs multivariate CABD. Options are the univariate option set;
// the Strategy field selects Binary (default), Linear INN or FixedKNN
// computation (MutualSetINN falls back to Binary in this extension).
// For d >= 2 channels the classifier additionally receives the
// cross-channel decorrelation feature (core.Candidate.XCorr) and
// detections co-occurring across channels merge into the collective
// subtype (CAPA-style); d = 1 keeps the exact univariate feature layout
// and detections.
type Detector struct {
	opts core.Options
	core *core.Detector // engine with the caller's feature layout (d = 1)
	x    *core.Detector // engine with the cross-channel column (d >= 2)
}

// NewDetector returns a multivariate detector.
func NewDetector(opts core.Options) *Detector {
	c := core.NewDetector(opts)
	xopts := c.Options()
	xopts.XChannelCorr = true
	return &Detector{opts: c.Options(), core: c, x: core.NewDetector(xopts)}
}

// Options returns the resolved option set.
func (d *Detector) Options() core.Options { return d.opts }

// Detect runs the unsupervised multivariate pipeline.
func (d *Detector) Detect(s *Series) *core.Result {
	res, _ := d.DetectCtx(context.Background(), s)
	return res
}

// DetectActive runs the pipeline with the CAL active-learning loop.
func (d *Detector) DetectActive(s *Series, o core.Labeler) *core.Result {
	res, _ := d.DetectActiveCtx(context.Background(), s, o)
	return res
}

// DetectCtx is Detect with cancellation: ctx is checked at stage
// boundaries and per candidate inside the scoring worker pool, and a
// cancelled context returns ctx.Err() promptly.
func (d *Detector) DetectCtx(ctx context.Context, s *Series) (*core.Result, error) {
	return d.run(ctx, s, nil)
}

// DetectActiveCtx is DetectActive with cancellation.
func (d *Detector) DetectActiveCtx(ctx context.Context, s *Series, o core.Labeler) (*core.Result, error) {
	return d.run(ctx, s, o)
}

// coocTol is the index tolerance for cross-channel co-occurrence: a
// candidate flagged within +-coocTol positions in at least two channels
// is a collective (multivariate) anomaly when it classifies as one.
const coocTol = 2

func (d *Detector) run(ctx context.Context, s *Series, o core.Labeler) (*core.Result, error) {
	t := d.opts.Obs.NewTrace()
	n := s.Len()
	if n < 4 || s.D() == 0 {
		return &core.Result{Strategy: d.opts.Strategy}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Standardize every dimension (Equation 2 per dimension).
	std := make([][]float64, s.D())
	for k, dim := range s.Dims {
		std[k] = stats.Standardize(dim)
	}

	// Per-channel candidate estimation: each channel's robust z of the
	// absolute second difference flags its own candidates; the union
	// (deduplicated by index, keeping the strongest z and the channel
	// that produced it) is the joint candidate set, and the per-channel
	// flags feed the co-occurrence merge below.
	var cands []core.Candidate
	zdim := make([]int, n)
	chHits := make([]int, n)
	t.Do(obs.StageCandidates, func() {
		zmax := make([]float64, n)
		flagged := make([][]bool, s.D())
		for k, dim := range std {
			d2 := series.SecondDiff(dim)
			rz := stats.RobustZ(d2)
			fl := make([]bool, n)
			for i, z := range rz {
				if z > zmax[i] {
					zmax[i] = z
					zdim[i] = k
				}
				if z > d.opts.CandidateZ {
					fl[i] = true
				}
			}
			flagged[k] = fl
		}
		for i, z := range zmax {
			if z > d.opts.CandidateZ {
				cands = append(cands, core.Candidate{Index: i, SecondDiffZ: z})
			}
		}
		if len(cands) > n/4 {
			cands = topByZ(cands, n/4)
		}
		// Co-occurrence counts: how many channels flag each index within
		// the tolerance window.
		for i := range chHits {
			for k := range flagged {
				for off := -coocTol; off <= coocTol; off++ {
					if j := i + off; j >= 0 && j < n && flagged[k][j] {
						chHits[i]++
						break
					}
				}
			}
		}
	})
	if len(cands) == 0 {
		res := &core.Result{Strategy: d.opts.Strategy}
		res.Stages = t.Timings()
		return res, nil
	}
	t.Add(obs.CounterCandidates, int64(len(cands)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Graceful degradation: a candidate explosion switches the joint
	// neighborhood to the fixed-k variant, mirroring the univariate path.
	strat := d.opts.Strategy
	degradeReason := ""
	if bound := d.opts.DegradeCandidates; bound > 0 && len(cands) > bound && strat != core.FixedKNN {
		strat = core.FixedKNN
		degradeReason = fmt.Sprintf("candidate count %d exceeds bound %d", len(cands), bound)
	}

	// Joint embedding and neighborhood computation. All scoring workers
	// share one bounded rank memo: overlapping neighborhoods make a
	// pair's reverse probe a later candidate's forward probe.
	pts := embed(std)
	comp := inn.NewNComputer(pts).WithRankMemo(0)
	sc := &mscorer{
		opts:   d.opts,
		std:    std,
		comp:   comp,
		tlim:   comp.RangeLimit(d.opts.RangeFrac),
		corpus: make(map[corpusKey][]string),
	}
	var scoreErr error
	t.Do(obs.StageINNScore, func() {
		scoreErr = sc.scoreAll(ctx, cands, strat, zdim)
	})
	if hits, misses := comp.MemoStats(); hits+misses > 0 {
		t.Add(obs.CounterRankMemoHits, hits)
		t.Add(obs.CounterRankMemoMisses, misses)
	}
	if scoreErr != nil {
		return nil, scoreErr
	}
	eng := d.core
	if s.D() >= 2 {
		eng = d.x
	}
	res, err := eng.EvaluateCandidatesCtx(ctx, cands, n, o)
	if err != nil {
		return nil, err
	}
	// CAPA-style collective merge: an anomaly detection at an index
	// flagged by two or more channels is a cross-channel collective
	// anomaly, whatever its per-channel neighborhood size said.
	if s.D() >= 2 {
		for i := range res.Anomalies {
			if chHits[res.Anomalies[i].Index] >= 2 {
				res.Anomalies[i].Subtype = series.CollectiveAnomaly
			}
		}
	}
	res.Strategy = strat
	res.Degraded = degradeReason != ""
	res.DegradeReason = degradeReason
	if degradeReason != "" {
		d.opts.Obs.Degraded(degradeReason)
	}
	// EvaluateCandidatesCtx recorded its own stages; fold in this run's
	// candidate-estimation and scoring spans so Stages covers the whole
	// pipeline.
	res.Stages.Merge(t.Timings())
	return res, nil
}

// corpusKey addresses the sliding-word cache: SAX corpora are per
// triggering dimension and window length.
type corpusKey struct{ dim, wlen int }

// mscorer carries the shared state of one multivariate scoring pass.
// Workers write only their own candidate slot; the corpus cache is the
// single shared mutable structure and is mutex-guarded (its content is
// a pure function of the key, so cache-fill races cannot change
// results).
type mscorer struct {
	opts     core.Options
	std      [][]float64
	comp     *inn.NComputer
	tlim     int
	corpusMu sync.Mutex
	corpus   map[corpusKey][]string
}

// scoreAll grows each candidate's neighborhood and fills its scores in
// parallel (one worker per GOMAXPROCS slot, one write-only slot per
// candidate — the same discipline as the univariate scoreAll, and
// bit-identical to the sequential pass Options.SeqOracle selects).
func (sc *mscorer) scoreAll(ctx context.Context, cands []core.Candidate, strat core.Strategy, zdim []int) error {
	workers := runtime.GOMAXPROCS(0)
	if sc.opts.SeqOracle {
		workers = 1
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	ch := make(chan int, len(cands))
	for i := range cands {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	var cancelled sync.Once
	var ctxErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if e := ctx.Err(); e != nil {
					cancelled.Do(func() { ctxErr = e })
					return
				}
				c := &cands[i]
				switch strat {
				case core.LinearINN:
					c.INN = sc.comp.Minimal(c.Index, sc.tlim)
				case core.FixedKNN:
					c.INN = sc.comp.KNN(c.Index, sc.opts.KNNK)
				default:
					c.INN = sc.comp.Binary(c.Index, sc.tlim)
				}
				sc.score(c, zdim[c.Index])
			}
		}()
	}
	wg.Wait()
	return ctxErr
}

// score fills the candidate's features from the multivariate geometry;
// trigger is the dimension whose second difference flagged the candidate.
func (sc *mscorer) score(c *core.Candidate, trigger int) {
	n := len(sc.std[0])
	ss := len(c.INN)
	c.Magnitude = float64(ss) / float64(n)
	lo, hi := c.Index, c.Index
	for _, j := range c.INN {
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	c.LeftExtent = c.Index - lo
	c.RightExtent = hi - c.Index
	if ext := c.LeftExtent + c.RightExtent; ext > 0 {
		diff := c.RightExtent - c.LeftExtent
		if diff < 0 {
			diff = -diff
		}
		c.Asymmetry = float64(diff) / float64(ext)
	}

	// Correlation score over the triggering dimension.
	hw := ss
	if hw < 3 {
		hw = 3
	}
	if hw > 12 {
		hw = 12
	}
	wlo, whi := c.Index-hw, c.Index+hw+1
	if wlo < 0 {
		wlo = 0
	}
	if whi > n {
		whi = n
	}
	if wlen := whi - wlo; wlen >= 2 && wlen <= n/2 {
		word := sax.Word(sc.std[trigger][wlo:whi], sc.opts.SAXSegments, sc.opts.SAXAlphabet)
		c.Correlation = sax.Frequency(sc.corpusFor(trigger, wlen), word)
	} else {
		c.Correlation = 1
	}

	// Variance score: total (all-dimension) standard deviation drop.
	pad := ss
	if pad < 3 {
		pad = 3
	}
	slo, shi := lo-pad, hi+pad+1
	if slo < 0 {
		slo = 0
	}
	if shi > n {
		shi = n
	}
	sdAll := totalStd(sc.std, slo, shi, -1, -1)
	sdRest := totalStd(sc.std, slo, shi, lo, hi+1)
	if sdAll == 0 {
		c.Variance = 0
	} else {
		vs := 1 - sdRest/sdAll
		if vs < 0 {
			vs = 0
		}
		if vs > 1 {
			vs = 1
		}
		c.Variance = vs
	}

	// Cross-channel decorrelation (d >= 2 only): the mean pairwise
	// channel correlation over the local window, mapped so that broken
	// co-movement — one channel deviating from an otherwise correlated
	// group — scores high.
	if len(sc.std) >= 2 {
		c.XCorr = sc.xcorr(c.Index, ss)
	}
}

// xcorr computes the cross-channel decorrelation score at index over a
// window sized by the neighborhood (clamped to [8, 32] half-width):
// (1 - mean pairwise correlation)/2 in [0, 1].
func (sc *mscorer) xcorr(index, ss int) float64 {
	n := len(sc.std[0])
	hw := ss
	if hw < 8 {
		hw = 8
	}
	if hw > 32 {
		hw = 32
	}
	lo, hi := index-hw, index+hw+1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi-lo < 4 {
		return 0
	}
	var sum float64
	var pairs int
	for a := 0; a < len(sc.std); a++ {
		for b := a + 1; b < len(sc.std); b++ {
			r := stats.Correlation(sc.std[a][lo:hi], sc.std[b][lo:hi])
			if math.IsNaN(r) {
				r = 0 // a constant window has no co-movement signal
			}
			sum += r
			pairs++
		}
	}
	x := (1 - sum/float64(pairs)) / 2
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// corpusFor returns the sliding SAX words of dimension dim at window
// length wlen, cached per (dim, wlen). Candidates in the same series
// often share pattern sizes, so the hit rate is high; the cache is the
// reason a 200-candidate run does not recompute the corpus 200 times.
func (sc *mscorer) corpusFor(dim, wlen int) []string {
	key := corpusKey{dim, wlen}
	sc.corpusMu.Lock()
	defer sc.corpusMu.Unlock()
	if words, ok := sc.corpus[key]; ok {
		return words
	}
	words := sax.SlidingWords(sc.std[dim], wlen, sc.opts.SAXSegments, sc.opts.SAXAlphabet)
	sc.corpus[key] = words
	return words
}

// topByZ keeps the k strongest candidates (guard against MAD collapse).
func topByZ(cands []core.Candidate, k int) []core.Candidate {
	if k < 1 {
		k = 1
	}
	// Selection by straightforward sort; candidate counts are small.
	out := append([]core.Candidate(nil), cands...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].SecondDiffZ > out[i].SecondDiffZ {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	// Restore index order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Index < out[i].Index {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// embed builds (standardized index, v_1..v_d) rows.
func embed(std [][]float64) [][]float64 {
	n := len(std[0])
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	sidx := stats.Standardize(idx)
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 1+len(std))
		row[0] = sidx[i]
		for k := range std {
			row[k+1] = std[k][i]
		}
		pts[i] = row
	}
	return pts
}

// totalStd is the square root of the mean per-dimension variance of the
// window [lo, hi), excluding [exLo, exHi) when exLo >= 0.
func totalStd(std [][]float64, lo, hi, exLo, exHi int) float64 {
	var acc float64
	var dims int
	for _, dim := range std {
		var vals []float64
		for i := lo; i < hi; i++ {
			if exLo >= 0 && i >= exLo && i < exHi {
				continue
			}
			vals = append(vals, dim[i])
		}
		if len(vals) < 2 {
			return 0
		}
		acc += stats.Variance(vals)
		dims++
	}
	if dims == 0 {
		return 0
	}
	return math.Sqrt(acc / float64(dims))
}
