package multi

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cabd/internal/core"
	"cabd/internal/series"
)

// resultFingerprint flattens everything detection-relevant about a
// result into a comparable string: indices, classes, subtypes and exact
// confidence bits, plus the scored candidate features.
func resultFingerprint(r *core.Result) string {
	out := fmt.Sprintf("strat=%v degraded=%v;", r.Strategy, r.Degraded)
	for _, d := range r.Anomalies {
		out += fmt.Sprintf("a(%d,%v,%v,%b);", d.Index, d.Class, d.Subtype, d.Confidence)
	}
	for _, d := range r.ChangePoints {
		out += fmt.Sprintf("c(%d,%b);", d.Index, d.Confidence)
	}
	for _, c := range r.Candidates {
		out += fmt.Sprintf("k(%d,%b,%b,%b,%b,%b,%v,%b);",
			c.Index, c.Magnitude, c.Correlation, c.Variance, c.Asymmetry,
			c.XCorr, c.Class, c.Confidence)
	}
	return out
}

// TestSequentialOracleDifferential proves the parallel multivariate
// scoring path is bit-identical to the sequential reference
// (Options.SeqOracle) at GOMAXPROCS 1, 2 and 8 — the acceptance
// criterion of the scenario subsystem.
func TestSequentialOracleDifferential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, d := range []int{1, 3} {
		s := gen(int64(10+d), 1200, d)
		want := resultFingerprint(NewDetector(core.Options{SeqOracle: true}).Detect(s))
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			got := resultFingerprint(NewDetector(core.Options{}).Detect(s))
			if got != want {
				t.Errorf("d=%d GOMAXPROCS=%d: parallel result diverges from sequential oracle\n got %s\nwant %s",
					d, procs, got, want)
			}
		}
	}
}

// TestFixedSeedDeterminism runs the same detection repeatedly and
// demands bit-identical output.
func TestFixedSeedDeterminism(t *testing.T) {
	s := gen(21, 1000, 2)
	want := resultFingerprint(NewDetector(core.Options{Seed: 7}).Detect(s))
	for i := 0; i < 3; i++ {
		got := resultFingerprint(NewDetector(core.Options{Seed: 7}).Detect(s))
		if got != want {
			t.Fatalf("run %d differs from run 0", i+1)
		}
	}
}

// TestDetectCtxCancellation checks cancellation at every stage
// boundary: an already-cancelled context must return ctx.Err() before
// any work, and a context cancelled mid-run must surface promptly.
func TestDetectCtxCancellation(t *testing.T) {
	s := gen(31, 1500, 3)
	det := NewDetector(core.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := det.DetectCtx(ctx, s); err != context.Canceled || res != nil {
		t.Errorf("pre-cancelled: res=%v err=%v, want nil/context.Canceled", res, err)
	}

	// A deadline in the past cancels between stages too.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := det.DetectCtx(dctx, s); err == nil {
		t.Error("expired deadline: want error, got nil")
	}

	// DetectActiveCtx: cancel from inside the labeler — the evaluation
	// loop's boundary check must stop the run.
	actx, acancel := context.WithCancel(context.Background())
	_, err := det.DetectActiveCtx(actx, s, cancelLabeler{s: s, cancel: acancel})
	if err != context.Canceled {
		t.Errorf("mid-AL cancel: err=%v, want context.Canceled", err)
	}
}

// cancelLabeler cancels the run on its first oracle query.
type cancelLabeler struct {
	s      *Series
	cancel context.CancelFunc
}

func (c cancelLabeler) Label(i int) series.Label {
	c.cancel()
	return c.s.LabelAt(i)
}

// TestDegradedPath forces the candidate-explosion fallback and checks
// it is reported and still produces bounded, usable output.
func TestDegradedPath(t *testing.T) {
	s := gen(41, 1200, 2)
	res := NewDetector(core.Options{DegradeCandidates: 2}).Detect(s)
	if !res.Degraded {
		t.Fatal("DegradeCandidates=2 did not degrade")
	}
	if res.Strategy != core.FixedKNN {
		t.Errorf("degraded strategy = %v, want FixedKNN", res.Strategy)
	}
	if res.DegradeReason == "" {
		t.Error("degraded without a reason")
	}
	// An already-FixedKNN configuration must not re-degrade.
	res2 := NewDetector(core.Options{DegradeCandidates: 2, Strategy: core.FixedKNN}).Detect(s)
	if res2.Degraded {
		t.Error("FixedKNN configuration reported degradation")
	}
}

// TestCollectiveMergeAcrossChannels: a burst hitting all channels at
// the same positions must come out with the collective subtype; the
// same burst confined to one channel of a correlated pair must not be
// relabeled by the cross-channel merge.
func TestCollectiveMergeAcrossChannels(t *testing.T) {
	s := gen(51, 1000, 3)
	res := NewDetector(core.Options{}).Detect(s)
	n := 1000
	var collective, seen int
	for _, d := range res.Anomalies {
		// The fixture's spikes at n/5 and n/2 hit every channel.
		if d.Index == n/5 || d.Index == n/2 {
			seen++
			if d.Subtype == series.CollectiveAnomaly {
				collective++
			}
		}
	}
	if seen == 0 {
		t.Fatal("fixture spikes not detected; cannot test merge")
	}
	if collective != seen {
		t.Errorf("cross-channel spikes labeled collective: %d/%d", collective, seen)
	}
}

// TestXCorrOnlyMultivariate: the cross-channel feature must stay zero
// on 1-channel input (the univariate layout) and be populated for d>=2.
func TestXCorrOnlyMultivariate(t *testing.T) {
	uni := gen(61, 800, 1)
	res := NewDetector(core.Options{}).Detect(uni)
	for _, c := range res.Candidates {
		if c.XCorr != 0 {
			t.Fatalf("d=1 candidate %d has XCorr=%v, want 0", c.Index, c.XCorr)
		}
	}
	mv := gen(61, 800, 3)
	res = NewDetector(core.Options{}).Detect(mv)
	var nonzero int
	for _, c := range res.Candidates {
		if c.XCorr != 0 {
			nonzero++
		}
		if c.XCorr < 0 || c.XCorr > 1 {
			t.Fatalf("XCorr %v out of [0,1]", c.XCorr)
		}
	}
	if len(res.Candidates) > 0 && nonzero == 0 {
		t.Error("d=3 run produced no nonzero XCorr at all")
	}
}
