package multi

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/series"
)

// gen builds a d-dimensional seasonal series with correlated dimensions,
// spike anomalies (all dimensions), one cross-dimension collective
// anomaly and one change point.
func gen(seed int64, n, d int) *Series {
	rng := rand.New(rand.NewSource(seed))
	dims := make([][]float64, d)
	base := make([]float64, n)
	ar := 0.0
	for i := range base {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		base[i] = 2*math.Sin(2*math.Pi*float64(i)/150) + ar
	}
	for k := range dims {
		dim := make([]float64, n)
		for i := range dim {
			dim[i] = base[i]*float64(k+1)*0.5 + rng.NormFloat64()*0.1
		}
		dims[k] = dim
	}
	s := NewSeries("multi", dims)
	s.Labels = make([]series.Label, n)
	// Spikes at fixed positions across all dimensions.
	for _, p := range []int{n / 5, n / 2} {
		for k := range dims {
			dims[k][p] += 15
		}
		s.Labels[p] = series.SingleAnomaly
	}
	// A collective anomaly visible only in dimension 0.
	for i := 3 * n / 4; i < 3*n/4+6; i++ {
		dims[0][i] += 12
		s.Labels[i] = series.CollectiveAnomaly
	}
	return s
}

// mlabeler adapts the multivariate series to core.Labeler.
type mlabeler struct{ s *Series }

func (m mlabeler) Label(i int) series.Label { return m.s.LabelAt(i) }

func TestDetectFindsCrossDimensionSpikes(t *testing.T) {
	s := gen(1, 1000, 3)
	res := NewDetector(core.Options{}).Detect(s)
	m := eval.Match(res.AnomalyIndices(), s.AnomalyIndices(), 2)
	if m.Recall < 0.7 {
		t.Errorf("multivariate recall = %v (pred %v)", m.Recall, res.AnomalyIndices())
	}
}

func TestSingleDimensionAnomalyDetected(t *testing.T) {
	// The dimension-0-only collective anomaly must still surface: the
	// joint embedding and per-dimension candidate scan see it.
	s := gen(2, 1000, 3)
	res := NewDetector(core.Options{}).DetectActive(s, mlabeler{s})
	start := 3 * 1000 / 4
	hits := 0
	for _, i := range res.AnomalyIndices() {
		if i >= start-1 && i < start+7 {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("dimension-0 collective anomaly coverage %d/6: %v",
			hits, res.AnomalyIndices())
	}
}

func TestActiveLearningImprovesMulti(t *testing.T) {
	s := gen(3, 1200, 2)
	det := NewDetector(core.Options{})
	unsup := det.Detect(s)
	al := det.DetectActive(s, mlabeler{s})
	fu := eval.Match(unsup.AnomalyIndices(), s.AnomalyIndices(), 2).F1
	fa := eval.Match(al.AnomalyIndices(), s.AnomalyIndices(), 2).F1
	if fa < fu-0.05 {
		t.Errorf("AL degraded multivariate F: %v -> %v", fu, fa)
	}
	if fa < 0.6 {
		t.Errorf("multivariate AL F = %v, want >= 0.6", fa)
	}
}

func TestUnivariateEquivalence(t *testing.T) {
	// d = 1 must behave like the univariate detector on the same data
	// (identical embedding up to the shared geometry).
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 800)
	ar := 0.0
	for i := range vals {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/120) + ar
	}
	vals[400] += 15
	ms := NewSeries("uni", [][]float64{vals})
	mres := NewDetector(core.Options{}).Detect(ms)
	ures := core.NewDetector(core.Options{}).Detect(series.New("uni", vals))
	mFound, uFound := false, false
	for _, i := range mres.AnomalyIndices() {
		if i == 400 {
			mFound = true
		}
	}
	for _, i := range ures.AnomalyIndices() {
		if i == 400 {
			uFound = true
		}
	}
	if mFound != uFound {
		t.Errorf("1-D multivariate (found=%v) disagrees with univariate (found=%v)",
			mFound, uFound)
	}
}

func TestSeriesAccessors(t *testing.T) {
	s := gen(5, 300, 2)
	if s.Len() != 300 || s.D() != 2 {
		t.Errorf("Len/D = %d/%d", s.Len(), s.D())
	}
	if s.LabelAt(-1) != series.Normal || s.LabelAt(999) != series.Normal {
		t.Error("out-of-range labels")
	}
	if len(s.AnomalyIndices()) == 0 {
		t.Error("no anomalies recorded")
	}
}

func TestDegenerate(t *testing.T) {
	d := NewDetector(core.Options{})
	if res := d.Detect(NewSeries("e", nil)); len(res.Anomalies) != 0 {
		t.Error("empty series")
	}
	if res := d.Detect(NewSeries("t", [][]float64{{1, 2}})); len(res.Anomalies) != 0 {
		t.Error("tiny series")
	}
	flat := make([]float64, 100)
	if res := d.Detect(NewSeries("f", [][]float64{flat, flat})); len(res.Anomalies) != 0 {
		t.Error("flat series produced detections")
	}
}
