package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteKNN is the reference implementation used for differential testing.
func bruteKNN(pts [][2]float64, q [2]float64, k, skipSelf int) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		if i == skipSelf {
			continue
		}
		all = append(all, Neighbor{Index: i, Dist: dist(q, p)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func randomPoints(rng *rand.Rand, n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	return pts
}

func TestKNNSimple(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	tr := New(pts)
	nn := tr.KNN([2]float64{0.1, 0}, 2, -1)
	if len(nn) != 2 || nn[0].Index != 0 || nn[1].Index != 1 {
		t.Errorf("KNN = %+v", nn)
	}
}

func TestKNNSkipSelf(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}}
	tr := New(pts)
	nn := tr.KNN(pts[0], 1, 0)
	if len(nn) != 1 || nn[0].Index != 1 {
		t.Errorf("skip-self KNN = %+v", nn)
	}
}

func TestKNNFewerThanK(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 1}}
	tr := New(pts)
	nn := tr.KNN([2]float64{0, 0}, 10, -1)
	if len(nn) != 2 {
		t.Errorf("expected all points, got %d", len(nn))
	}
	if got := tr.KNN([2]float64{0, 0}, 0, -1); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Error("empty tree length")
	}
	if got := tr.KNN([2]float64{0, 0}, 3, -1); got != nil {
		t.Errorf("empty tree KNN = %v", got)
	}
	if got := tr.Within([2]float64{0, 0}, 5, -1); got != nil {
		t.Errorf("empty tree Within = %v", got)
	}
}

// Differential test: KD-tree KNN must exactly match brute force for many
// random configurations (distances equal; indices equal up to distance
// ties, which the deterministic tie-break makes exact).
func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n)
		tr := New(pts)
		for qi := 0; qi < 10; qi++ {
			q := [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			k := 1 + rng.Intn(12)
			skip := -1
			if rng.Intn(2) == 0 && n > 1 {
				skip = rng.Intn(n)
			}
			got := tr.KNN(q, k, skip)
			want := bruteKNN(pts, q, k, skip)
			if len(got) != len(want) {
				t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("trial %d: dist[%d] %v vs %v", trial, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		pts := randomPoints(rng, n)
		tr := New(pts)
		q := [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		r := rng.Float64() * 15
		got := tr.Within(q, r, -1)
		want := 0
		for _, p := range pts {
			if dist(q, p) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: Within found %d, brute %d", trial, len(got), want)
		}
		for _, nb := range got {
			if nb.Dist > r {
				t.Fatalf("Within returned point beyond radius: %v > %v", nb.Dist, r)
			}
		}
	}
}

func TestKNNSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 100)
	tr := New(pts)
	nn := tr.KNN([2]float64{0, 0}, 20, -1)
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatalf("results not sorted: %v after %v", nn[i].Dist, nn[i-1].Dist)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][2]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	tr := New(pts)
	nn := tr.KNN([2]float64{1, 1}, 3, -1)
	if len(nn) != 3 {
		t.Fatalf("expected 3 results, got %d", len(nn))
	}
	for _, x := range nn[:3] {
		if x.Dist != 0 {
			t.Errorf("duplicate distance = %v", x.Dist)
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 20000)
	tr := New(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(pts[i%len(pts)], 10, i%len(pts))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts)
	}
}
