package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteKNN is the reference implementation used for differential testing.
func bruteKNN(pts [][2]float64, q [2]float64, k, skipSelf int) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		if i == skipSelf {
			continue
		}
		all = append(all, Neighbor{Index: i, Dist: dist(q, p)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func randomPoints(rng *rand.Rand, n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	return pts
}

// gridPoints draws coordinates from a tiny integer grid so that duplicate
// points and exact distance ties are the norm, not the exception — the
// embedding of a flat series produces exactly this.
func gridPoints(rng *rand.Rand, n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{float64(rng.Intn(4)), float64(rng.Intn(4))}
	}
	return pts
}

// bruteRank counts the points ordering strictly ahead of index j under
// the (distance, index) neighbor order of query q.
func bruteRank(pts [][2]float64, q [2]float64, j, skip int) int {
	dj := dist(q, pts[j])
	count := 0
	for m, p := range pts {
		if m == skip || m == j {
			continue
		}
		d := dist(q, p)
		if d < dj || (d == dj && m < j) {
			count++
		}
	}
	return count
}

func TestKNNSimple(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	tr := New(pts)
	nn := tr.KNN([2]float64{0.1, 0}, 2, -1)
	if len(nn) != 2 || nn[0].Index != 0 || nn[1].Index != 1 {
		t.Errorf("KNN = %+v", nn)
	}
}

func TestKNNSkipSelf(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}}
	tr := New(pts)
	nn := tr.KNN(pts[0], 1, 0)
	if len(nn) != 1 || nn[0].Index != 1 {
		t.Errorf("skip-self KNN = %+v", nn)
	}
}

func TestKNNFewerThanK(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 1}}
	tr := New(pts)
	nn := tr.KNN([2]float64{0, 0}, 10, -1)
	if len(nn) != 2 {
		t.Errorf("expected all points, got %d", len(nn))
	}
	if got := tr.KNN([2]float64{0, 0}, 0, -1); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Error("empty tree length")
	}
	if got := tr.KNN([2]float64{0, 0}, 3, -1); got != nil {
		t.Errorf("empty tree KNN = %v", got)
	}
	if got := tr.Within([2]float64{0, 0}, 5, -1); got != nil {
		t.Errorf("empty tree Within = %v", got)
	}
}

// Differential test: KD-tree KNN must exactly match brute force —
// including indices, which the deterministic (distance, index) tie-break
// makes exact — over both generic random points and duplicate-heavy grid
// points where every query is riddled with distance ties.
func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(200)
		var pts [][2]float64
		if trial%2 == 0 {
			pts = randomPoints(rng, n)
		} else {
			pts = gridPoints(rng, n)
		}
		tr := New(pts)
		var buf []Neighbor
		for qi := 0; qi < 10; qi++ {
			q := [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			if rng.Intn(2) == 0 {
				q = pts[rng.Intn(n)] // query on an indexed point: max ties
			}
			k := 1 + rng.Intn(12)
			skip := -1
			if rng.Intn(2) == 0 && n > 1 {
				skip = rng.Intn(n)
			}
			got := tr.KNNInto(q, k, skip, buf)
			buf = got
			want := bruteKNN(pts, q, k, skip)
			if len(got) != len(want) {
				t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("trial %d: result[%d] = %+v, want %+v (pts=%v q=%v k=%d skip=%d)",
						trial, i, got[i], want[i], pts, q, k, skip)
				}
			}
		}
	}
}

// Regression for the arrival-order tie bug: with duplicate points, strict
// `d < worst` admission could exclude an equal-distance neighbor with a
// smaller index depending on tree traversal order. The documented
// tie-break says the smaller index wins, always.
func TestKNNTieBreakDuplicates(t *testing.T) {
	// Several duplicates of the query point plus equidistant mirrors
	// across the splitting plane, in every insertion order.
	base := [][2]float64{{1, 1}, {1, 1}, {1, 1}, {0, 1}, {2, 1}, {1, 0}, {1, 2}, {5, 5}}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(base))
		pts := make([][2]float64, len(base))
		for i, p := range perm {
			pts[i] = base[p]
		}
		tr := New(pts)
		for k := 1; k <= len(pts); k++ {
			got := tr.KNN([2]float64{1, 1}, k, -1)
			want := bruteKNN(pts, [2]float64{1, 1}, k, -1)
			for i := range got {
				if got[i].Index != want[i].Index {
					t.Fatalf("trial %d k=%d: index[%d] = %d, want %d (pts=%v)",
						trial, k, i, got[i].Index, want[i].Index, pts)
				}
			}
		}
	}
}

// Flat-series regression: all points identical — any k must select the k
// smallest indices.
func TestKNNAllDuplicates(t *testing.T) {
	pts := make([][2]float64, 40)
	for i := range pts {
		pts[i] = [2]float64{3, 3}
	}
	tr := New(pts)
	for _, k := range []int{1, 5, 17, 40} {
		nn := tr.KNN([2]float64{3, 3}, k, 7)
		if len(nn) != min(k, 39) {
			t.Fatalf("k=%d: got %d results", k, len(nn))
		}
		wantIdx := 0
		for i, nb := range nn {
			if wantIdx == 7 {
				wantIdx++ // skipSelf
			}
			if nb.Index != wantIdx || nb.Dist != 0 {
				t.Fatalf("k=%d: result[%d] = %+v, want index %d dist 0", k, i, nb, wantIdx)
			}
			wantIdx++
		}
	}
}

// Rank must agree with the brute-force (distance, index) rank for every
// indexed point, so that rank < k is exactly KNN membership.
func TestRankMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(120)
		var pts [][2]float64
		if trial%2 == 0 {
			pts = randomPoints(rng, n)
		} else {
			pts = gridPoints(rng, n)
		}
		tr := New(pts)
		for probe := 0; probe < 20; probe++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			got := tr.Rank(pts[i], dist(pts[i], pts[j]), j, i)
			want := bruteRank(pts, pts[i], j, i)
			if got != want {
				t.Fatalf("trial %d: Rank(%d,%d) = %d, want %d (pts=%v)",
					trial, i, j, got, want, pts)
			}
			// rank < k  <=>  j in KNN(i, k), for k around the rank.
			for _, k := range []int{got, got + 1} {
				if k == 0 {
					continue
				}
				inKNN := false
				for _, nb := range tr.KNN(pts[i], k, i) {
					if nb.Index == j {
						inKNN = true
					}
				}
				if inKNN != (got < k) {
					t.Fatalf("trial %d: rank %d vs KNN membership at k=%d disagree", trial, got, k)
				}
			}
		}
	}
}

func TestCountWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(150)
		var pts [][2]float64
		if trial%2 == 0 {
			pts = randomPoints(rng, n)
		} else {
			pts = gridPoints(rng, n)
		}
		tr := New(pts)
		q := pts[rng.Intn(n)]
		r := rng.Float64() * 6
		skip := -1
		if rng.Intn(2) == 0 {
			skip = rng.Intn(n)
		}
		want := 0
		for i, p := range pts {
			if i != skip && dist(q, p) <= r {
				want++
			}
		}
		if got := tr.CountWithin(q, r, skip); got != want {
			t.Fatalf("trial %d: CountWithin = %d, want %d", trial, got, want)
		}
		if got := len(tr.Within(q, r, skip)); got != want {
			t.Fatalf("trial %d: Within len = %d, want %d", trial, got, want)
		}
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		pts := randomPoints(rng, n)
		tr := New(pts)
		q := [2]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		r := rng.Float64() * 15
		got := tr.Within(q, r, -1)
		want := 0
		for _, p := range pts {
			if dist(q, p) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: Within found %d, brute %d", trial, len(got), want)
		}
		for _, nb := range got {
			if nb.Dist > r {
				t.Fatalf("Within returned point beyond radius: %v > %v", nb.Dist, r)
			}
		}
	}
}

func TestKNNSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 100)
	tr := New(pts)
	nn := tr.KNN([2]float64{0, 0}, 20, -1)
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatalf("results not sorted: %v after %v", nn[i].Dist, nn[i-1].Dist)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][2]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	tr := New(pts)
	nn := tr.KNN([2]float64{1, 1}, 3, -1)
	if len(nn) != 3 {
		t.Fatalf("expected 3 results, got %d", len(nn))
	}
	for _, x := range nn[:3] {
		if x.Dist != 0 {
			t.Errorf("duplicate distance = %v", x.Dist)
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 20000)
	tr := New(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(pts[i%len(pts)], 10, i%len(pts))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts)
	}
}
