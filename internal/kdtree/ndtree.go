package kdtree

import "math"

// ND is a static KD-tree over points of arbitrary (fixed) dimension,
// backing the multivariate extension of the detector (the paper's
// future-work direction: "we plan to study how our techniques apply on
// multi-dimensional time series"). Queries share the 2-D tree's
// (distance, index) tie-break, iterative traversal and buffer reuse.
type ND struct {
	root *ndNode
	dim  int
	n    int
}

type ndNode struct {
	point       []float64
	index       int
	axis        int
	left, right *ndNode
}

// NewND builds an N-dimensional KD-tree over pts (rows are points; all
// rows must share one length). The original position of each point is
// retained and returned by queries.
func NewND(pts [][]float64) *ND {
	if len(pts) == 0 {
		return &ND{}
	}
	items := make([]ndItem, len(pts))
	for i, p := range pts {
		items[i] = ndItem{p: p, i: i}
	}
	d := len(pts[0])
	return &ND{root: buildND(items, 0, d), dim: d, n: len(pts)}
}

type ndItem struct {
	p []float64
	i int
}

func buildND(items []ndItem, depth, dim int) *ndNode {
	if len(items) == 0 {
		return nil
	}
	axis := depth % dim
	mid := len(items) / 2
	medianSelectND(items, mid, axis)
	n := &ndNode{point: items[mid].p, index: items[mid].i, axis: axis}
	n.left = buildND(items[:mid], depth+1, dim)
	n.right = buildND(items[mid+1:], depth+1, dim)
	return n
}

// medianSelectND is medianSelect over []float64 rows (see kdtree.go for
// the invariant and pivot rationale).
func medianSelectND(items []ndItem, k, axis int) {
	lo, hi := 0, len(items)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if items[mid].p[axis] < items[lo].p[axis] {
			items[mid], items[lo] = items[lo], items[mid]
		}
		if items[hi].p[axis] < items[mid].p[axis] {
			items[hi], items[mid] = items[mid], items[hi]
			if items[mid].p[axis] < items[lo].p[axis] {
				items[mid], items[lo] = items[lo], items[mid]
			}
		}
		items[lo], items[mid] = items[mid], items[lo]
		p := items[lo].p[axis]
		i, j := lo-1, hi+1
		for {
			for {
				j--
				if items[j].p[axis] <= p {
					break
				}
			}
			for {
				i++
				if items[i].p[axis] >= p {
					break
				}
			}
			if i >= j {
				break
			}
			items[i], items[j] = items[j], items[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
}

// Len returns the number of indexed points.
func (t *ND) Len() int { return t.n }

// Dim returns the point dimensionality (0 for an empty tree).
func (t *ND) Dim() int { return t.dim }

type ndFrame struct {
	n         *ndNode
	planeDist float64
}

// KNN returns the k nearest neighbors of q, sorted by increasing distance
// with index tie-break; skipSelf excludes that original index.
func (t *ND) KNN(q []float64, k int, skipSelf int) []Neighbor {
	return t.KNNInto(q, k, skipSelf, nil)
}

// KNNInto is KNN with a caller-supplied result buffer (reused when its
// capacity suffices); the returned slice aliases buf.
func (t *ND) KNNInto(q []float64, k, skipSelf int, buf []Neighbor) []Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	want := k
	if want > t.n {
		want = t.n
	}
	h := buf[:0]
	if cap(h) < want {
		h = make([]Neighbor, 0, want)
	}
	var stack [maxStack]ndFrame
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			f := stack[top]
			if len(h) == k && f.planeDist > h[0].Dist {
				continue
			}
			cur = f.n
		}
		if cur.index != skipSelf {
			d := distN(q, cur.point)
			nb := Neighbor{Index: cur.index, Dist: d}
			if len(h) < k {
				h = append(h, nb)
				siftUp(h, len(h)-1)
			} else if worse(h[0], nb) {
				h[0] = nb
				siftDown(h, 0)
			}
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil {
			stack[top] = ndFrame{n: far, planeDist: math.Abs(diff)}
			top++
		}
		cur = near
	}
	ascendingSort(h)
	return h
}

// Rank is the N-dimensional counterpart of KD.Rank: the number of points
// (excluding skipSelf and tieIndex) ordering strictly ahead of a point at
// distance d with original index tieIndex, allocation-free.
func (t *ND) Rank(q []float64, d float64, tieIndex, skipSelf int) int {
	return t.RankAtMost(q, d, tieIndex, skipSelf, t.n)
}

// RankAtMost is Rank with an early exit at limit; the return value is
// min(rank, limit), and a result strictly below limit is the exact rank.
// See KD.RankAtMost.
func (t *ND) RankAtMost(q []float64, d float64, tieIndex, skipSelf, limit int) int {
	count := 0
	if limit <= 0 {
		return 0
	}
	var stack [maxStack]*ndNode
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			cur = stack[top]
		}
		if cur.index != skipSelf && cur.index != tieIndex {
			dd := distN(q, cur.point)
			//cabd:lint-ignore floateq rank counting must mirror the exact (distance, index) tie order of the k-NN engine
			if dd < d || (dd == d && cur.index < tieIndex) {
				count++
				if count >= limit {
					return count
				}
			}
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil && math.Abs(diff) <= d {
			stack[top] = far
			top++
		}
		cur = near
	}
	return count
}

// CountWithin returns the number of points with distance <= r from q
// (excluding skipSelf) in one allocation-free walk.
func (t *ND) CountWithin(q []float64, r float64, skipSelf int) int {
	count := 0
	var stack [maxStack]*ndNode
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			cur = stack[top]
		}
		if cur.index != skipSelf && distN(q, cur.point) <= r {
			count++
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil && math.Abs(diff) <= r {
			stack[top] = far
			top++
		}
		cur = near
	}
	return count
}

// DistN returns the Euclidean distance between two rows — the exact
// metric ND queries use, exported for rank callers.
func DistN(p, q []float64) float64 { return distN(p, q) }

func distN(p, q []float64) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}
