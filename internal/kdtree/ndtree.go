package kdtree

import (
	"container/heap"
	"math"
	"sort"
)

// ND is a static KD-tree over points of arbitrary (fixed) dimension,
// backing the multivariate extension of the detector (the paper's
// future-work direction: "we plan to study how our techniques apply on
// multi-dimensional time series").
type ND struct {
	root *ndNode
	dim  int
	n    int
}

type ndNode struct {
	point       []float64
	index       int
	axis        int
	left, right *ndNode
}

// NewND builds an N-dimensional KD-tree over pts (rows are points; all
// rows must share one length). The original position of each point is
// retained and returned by queries.
func NewND(pts [][]float64) *ND {
	if len(pts) == 0 {
		return &ND{}
	}
	items := make([]ndItem, len(pts))
	for i, p := range pts {
		items[i] = ndItem{p: p, i: i}
	}
	d := len(pts[0])
	return &ND{root: buildND(items, 0, d), dim: d, n: len(pts)}
}

type ndItem struct {
	p []float64
	i int
}

func buildND(items []ndItem, depth, dim int) *ndNode {
	if len(items) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(items, func(a, b int) bool { return items[a].p[axis] < items[b].p[axis] })
	mid := len(items) / 2
	n := &ndNode{point: items[mid].p, index: items[mid].i, axis: axis}
	n.left = buildND(items[:mid], depth+1, dim)
	n.right = buildND(items[mid+1:], depth+1, dim)
	return n
}

// Len returns the number of indexed points.
func (t *ND) Len() int { return t.n }

// Dim returns the point dimensionality (0 for an empty tree).
func (t *ND) Dim() int { return t.dim }

// KNN returns the k nearest neighbors of q, sorted by increasing distance
// with index tie-break; skipSelf excludes that original index.
func (t *ND) KNN(q []float64, k int, skipSelf int) []Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	h := make(nnHeap, 0, k+1)
	var search func(n *ndNode)
	search = func(n *ndNode) {
		if n == nil {
			return
		}
		if n.index != skipSelf {
			d := distN(q, n.point)
			if len(h) < k {
				heap.Push(&h, Neighbor{Index: n.index, Dist: d})
			} else if d < h[0].Dist {
				heap.Pop(&h)
				heap.Push(&h, Neighbor{Index: n.index, Dist: d})
			}
		}
		diff := q[n.axis] - n.point[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		search(near)
		if len(h) < k || math.Abs(diff) < h[0].Dist {
			search(far)
		}
	}
	search(t.root)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

func distN(p, q []float64) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}
