// Package kdtree implements a static 2-D KD-tree with k-nearest-neighbor,
// range-count and rank queries. The paper's runtime evaluation (Section
// V-D) uses a KD-tree to accelerate neighbor search for the INN
// computation; this package is that substrate. Points are [2]float64
// (standardized index, standardized value) and carry their original series
// index as payload.
//
// All queries order neighbors by (distance, original index): among
// equidistant points the smaller index ranks first. That tie-break is not
// cosmetic — flat series embed as duplicate points, and the INN mutual-rank
// probes need one deterministic answer to the question "is j among the k
// nearest neighbors of i".
//
// Traversals are iterative (explicit stack, bounded by the balanced tree's
// height) and allocation-free when the caller supplies buffers: KNNInto /
// WithinInto reuse caller storage, and Rank / CountWithin count in a bare
// tree walk with no candidate list at all.
package kdtree

import "math"

type node struct {
	point       [2]float64
	index       int // original index
	axis        int
	left, right *node
}

// New builds a KD-tree over pts. The original position of each point in
// pts is retained and returned by queries. Building is O(n log n) via
// median quickselect per level (expected linear per level, no full sort).
func New(pts [][2]float64) *KD {
	items := make([]item, len(pts))
	for i, p := range pts {
		items[i] = item{p: p, i: i}
	}
	return &KD{root: build(items, 0), n: len(pts)}
}

// KD is the public tree handle.
type KD struct {
	root *node
	n    int
}

// Len returns the number of indexed points.
func (t *KD) Len() int { return t.n }

type item struct {
	p [2]float64
	i int
}

func build(items []item, depth int) *node {
	if len(items) == 0 {
		return nil
	}
	axis := depth % 2
	mid := len(items) / 2
	medianSelect(items, mid, axis)
	n := &node{point: items[mid].p, index: items[mid].i, axis: axis}
	n.left = build(items[:mid], depth+1)
	n.right = build(items[mid+1:], depth+1)
	return n
}

// medianSelect partially orders items so that items[k] holds the k-th
// axis-order statistic with no larger element before it and no smaller
// element after it — exactly the invariant the KD split needs. Hoare
// quickselect with a median-of-three pivot: expected O(n), robust against
// the sorted index axis and against duplicate-heavy value axes (flat
// series), both of which are quadratic for naive pivots.
func medianSelect(items []item, k, axis int) {
	lo, hi := 0, len(items)-1
	for lo < hi {
		// Median-of-three of (lo, mid, hi), moved to lo as the pivot.
		mid := int(uint(lo+hi) >> 1)
		if items[mid].p[axis] < items[lo].p[axis] {
			items[mid], items[lo] = items[lo], items[mid]
		}
		if items[hi].p[axis] < items[mid].p[axis] {
			items[hi], items[mid] = items[mid], items[hi]
			if items[mid].p[axis] < items[lo].p[axis] {
				items[mid], items[lo] = items[lo], items[mid]
			}
		}
		items[lo], items[mid] = items[mid], items[lo]
		p := items[lo].p[axis]
		// Hoare partition: [lo..j] <= p <= [j+1..hi] on exit.
		i, j := lo-1, hi+1
		for {
			for {
				j--
				if items[j].p[axis] <= p {
					break
				}
			}
			for {
				i++
				if items[i].p[axis] >= p {
					break
				}
			}
			if i >= j {
				break
			}
			items[i], items[j] = items[j], items[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
}

// Neighbor is one k-NN query result.
type Neighbor struct {
	Index int     // original position in the input slice
	Dist  float64 // Euclidean distance to the query point
}

// worse reports whether a ranks strictly after b in the documented
// (distance, index) neighbor order.
func worse(a, b Neighbor) bool {
	//cabd:lint-ignore floateq the documented (distance, index) order needs exact distance ties to break on index deterministically
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

// The candidate heap is a plain slice ordered as a max-heap under worse
// (worst candidate on top), manipulated with inlined sift operations so no
// interface boxing or allocation happens per push.

func siftUp(h []Neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []Neighbor, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worse(h[l], h[m]) {
			m = l
		}
		if r < n && worse(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// ascendingSort heap-sorts h (a worse-ordered max-heap) into ascending
// (distance, index) order in place.
func ascendingSort(h []Neighbor) {
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0)
	}
}

// maxStack bounds the explicit traversal stack. The tree is built by
// median splits, so its height is ceil(log2(n+1)); 64 covers any
// addressable point count.
const maxStack = 64

type frame struct {
	n         *node
	planeDist float64 // distance from the query to the node's split plane
}

// KNN returns the k nearest neighbors of q, sorted by increasing distance
// with index tie-break. When skipSelf >= 0, the point with that original
// index is excluded — queries for a point already in the tree pass its own
// index. If fewer than k points are available the result is shorter.
func (t *KD) KNN(q [2]float64, k int, skipSelf int) []Neighbor {
	return t.KNNInto(q, k, skipSelf, nil)
}

// KNNInto is KNN with a caller-supplied result buffer: buf's storage is
// reused when its capacity suffices, so steady-state queries allocate
// nothing. The returned slice aliases buf.
func (t *KD) KNNInto(q [2]float64, k, skipSelf int, buf []Neighbor) []Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	want := k
	if want > t.n {
		want = t.n
	}
	h := buf[:0]
	if cap(h) < want {
		h = make([]Neighbor, 0, want)
	}
	var stack [maxStack]frame
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			f := stack[top]
			// Tie-aware pruning: descend the far side unless the split
			// plane is strictly farther than the current worst neighbor —
			// an equal-distance point beyond it could still win on index.
			if len(h) == k && f.planeDist > h[0].Dist {
				continue
			}
			cur = f.n
		}
		if cur.index != skipSelf {
			d := dist(q, cur.point)
			nb := Neighbor{Index: cur.index, Dist: d}
			if len(h) < k {
				h = append(h, nb)
				siftUp(h, len(h)-1)
			} else if worse(h[0], nb) {
				// Tie-aware admission: replace the worst candidate when
				// the new point wins on (distance, index), not only on
				// strict distance.
				h[0] = nb
				siftDown(h, 0)
			}
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil {
			stack[top] = frame{n: far, planeDist: math.Abs(diff)}
			top++
		}
		cur = near
	}
	ascendingSort(h)
	return h
}

// Rank returns how many indexed points (excluding skipSelf and the ranked
// point itself) order strictly ahead of a point at distance d with
// original index tieIndex under the (distance, index) neighbor order of
// query q. For a point j in the tree with d = dist(q_i, p_j), tieIndex =
// j, skipSelf = i, the result r satisfies: j is among the k nearest
// neighbors of i iff r < k. The walk counts in place — no heap, no
// allocation.
func (t *KD) Rank(q [2]float64, d float64, tieIndex, skipSelf int) int {
	return t.RankAtMost(q, d, tieIndex, skipSelf, t.n)
}

// RankAtMost is Rank with an early exit: the walk stops as soon as the
// count reaches limit, so the return value is min(rank, limit). A top-k
// membership probe only needs to distinguish rank < k from rank >= k, and
// aborting at k bounds the work of a failing probe by the k points it
// finds instead of the full ball of radius d. When the returned value is
// strictly below limit the walk ran to completion and the result is the
// exact rank. The near child is visited before the far child so the count
// fills from the dense side out and the exit triggers early.
func (t *KD) RankAtMost(q [2]float64, d float64, tieIndex, skipSelf, limit int) int {
	count := 0
	if limit <= 0 {
		return 0
	}
	var stack [maxStack]*node
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			cur = stack[top]
		}
		if cur.index != skipSelf && cur.index != tieIndex {
			dd := dist(q, cur.point)
			//cabd:lint-ignore floateq rank counting must mirror the exact (distance, index) tie order of the k-NN engine
			if dd < d || (dd == d && cur.index < tieIndex) {
				count++
				if count >= limit {
					return count
				}
			}
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		// A far-side point is at least |diff| away; it can only tie or
		// beat distance d when |diff| <= d.
		if far != nil && math.Abs(diff) <= d {
			stack[top] = far
			top++
		}
		cur = near
	}
	return count
}

// CountWithin returns the number of points with distance <= r from q
// (excluding skipSelf) in one allocation-free walk.
func (t *KD) CountWithin(q [2]float64, r float64, skipSelf int) int {
	count := 0
	var stack [maxStack]*node
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			cur = stack[top]
		}
		if cur.index != skipSelf && dist(q, cur.point) <= r {
			count++
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil && math.Abs(diff) <= r {
			stack[top] = far
			top++
		}
		cur = near
	}
	return count
}

// Within returns all points with distance <= r from q (excluding
// skipSelf), unsorted.
func (t *KD) Within(q [2]float64, r float64, skipSelf int) []Neighbor {
	return t.WithinInto(q, r, skipSelf, nil)
}

// WithinInto is Within with a caller-supplied result buffer; the returned
// slice aliases buf when its capacity suffices.
func (t *KD) WithinInto(q [2]float64, r float64, skipSelf int, buf []Neighbor) []Neighbor {
	out := buf[:0]
	var stack [maxStack]*node
	top := 0
	cur := t.root
	for cur != nil || top > 0 {
		if cur == nil {
			top--
			cur = stack[top]
		}
		if cur.index != skipSelf {
			if d := dist(q, cur.point); d <= r {
				out = append(out, Neighbor{Index: cur.index, Dist: d})
			}
		}
		diff := q[cur.axis] - cur.point[cur.axis]
		near, far := cur.left, cur.right
		if diff > 0 {
			near, far = cur.right, cur.left
		}
		if far != nil && math.Abs(diff) <= r {
			stack[top] = far
			top++
		}
		cur = near
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Dist returns the Euclidean distance between two embedded points — the
// exact metric every query in this package uses, exported so rank callers
// compute bit-identical thresholds.
func Dist(p, q [2]float64) float64 { return dist(p, q) }

func dist(p, q [2]float64) float64 {
	dx := p[0] - q[0]
	dy := p[1] - q[1]
	return math.Sqrt(dx*dx + dy*dy)
}
