// Package kdtree implements a static 2-D KD-tree with k-nearest-neighbor
// queries. The paper's runtime evaluation (Section V-D) uses a KD-tree to
// accelerate neighbor search for the INN computation; this package is that
// substrate. Points are [2]float64 (standardized index, standardized value)
// and carry their original series index as payload.
package kdtree

import (
	"container/heap"
	"math"
	"sort"
)

type node struct {
	point       [2]float64
	index       int // original index
	axis        int
	left, right *node
}

// New builds a KD-tree over pts. The original position of each point in
// pts is retained and returned by queries. Building is O(n log n).
func New(pts [][2]float64) *KD {
	items := make([]item, len(pts))
	for i, p := range pts {
		items[i] = item{p: p, i: i}
	}
	return &KD{root: build(items, 0), n: len(pts)}
}

// KD is the public tree handle.
type KD struct {
	root *node
	n    int
}

// Len returns the number of indexed points.
func (t *KD) Len() int { return t.n }

type item struct {
	p [2]float64
	i int
}

func build(items []item, depth int) *node {
	if len(items) == 0 {
		return nil
	}
	axis := depth % 2
	sort.Slice(items, func(a, b int) bool { return items[a].p[axis] < items[b].p[axis] })
	mid := len(items) / 2
	n := &node{point: items[mid].p, index: items[mid].i, axis: axis}
	n.left = build(items[:mid], depth+1)
	n.right = build(items[mid+1:], depth+1)
	return n
}

// Neighbor is one k-NN query result.
type Neighbor struct {
	Index int     // original position in the input slice
	Dist  float64 // Euclidean distance to the query point
}

// maxHeap of neighbors keyed by distance (largest on top) so we can evict
// the worst candidate while scanning.
type nnHeap []Neighbor

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// KNN returns the k nearest neighbors of q, sorted by increasing distance.
// When skipSelf >= 0, the point with that original index is excluded —
// queries for a point already in the tree pass its own index. If fewer
// than k points are available the result is shorter.
func (t *KD) KNN(q [2]float64, k int, skipSelf int) []Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	h := make(nnHeap, 0, k+1)
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		if n.index != skipSelf {
			d := dist(q, n.point)
			if len(h) < k {
				heap.Push(&h, Neighbor{Index: n.index, Dist: d})
			} else if d < h[0].Dist {
				heap.Pop(&h)
				heap.Push(&h, Neighbor{Index: n.index, Dist: d})
			}
		}
		diff := q[n.axis] - n.point[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		search(near)
		// Only descend the far side if the splitting plane is closer
		// than the current worst neighbor (or we still need points).
		if len(h) < k || math.Abs(diff) < h[0].Dist {
			search(far)
		}
	}
	search(t.root)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// Within returns all points with distance <= r from q (excluding skipSelf),
// unsorted.
func (t *KD) Within(q [2]float64, r float64, skipSelf int) []Neighbor {
	var out []Neighbor
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		if n.index != skipSelf {
			if d := dist(q, n.point); d <= r {
				out = append(out, Neighbor{Index: n.index, Dist: d})
			}
		}
		diff := q[n.axis] - n.point[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		search(near)
		if math.Abs(diff) <= r {
			search(far)
		}
	}
	search(t.root)
	return out
}

func dist(p, q [2]float64) float64 {
	dx := p[0] - q[0]
	dy := p[1] - q[1]
	return math.Sqrt(dx*dx + dy*dy)
}
