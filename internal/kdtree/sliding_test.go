package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/stats"
)

// slidingHarness drives a Sliding tree through a seeded stream and, at
// every hop, checks it answers bit-identically to a static KD freshly
// built over the standardized embedding of the live window — rank walks,
// k-NN lists, and the frame transform itself.
func TestSlidingMatchesStaticTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const window, hop, total = 96, 7, 700

	sl := NewSliding()
	var win []float64 // live window values
	start := 0        // global index of win[0]

	val := func(i int) float64 {
		switch {
		case i%137 == 0:
			return 40 + rng.NormFloat64() // spikes
		case i%61 == 0:
			return rng.NormFloat64() * 1e-9 // near-duplicates
		default:
			return math.Sin(float64(i)/9) + rng.NormFloat64()*0.3
		}
	}

	for i := 0; i < total; i++ {
		v := val(i)
		sl.Push(int64(i), v)
		win = append(win, v)
		if len(win) > window {
			drop := len(win) - window
			win = win[drop:]
			start += drop
			sl.EvictBefore(int64(start))
		}
		if i%hop != hop-1 || len(win) < 8 {
			continue
		}
		sl.Flush()
		checkAgainstStatic(t, rng, sl, win, start)
	}
}

func checkAgainstStatic(t *testing.T, rng *rand.Rand, sl *Sliding, win []float64, start int) {
	t.Helper()
	n := len(win)
	if got := sl.Len(); got != n {
		t.Fatalf("start=%d: sliding Len=%d, window has %d", start, got, n)
	}

	// The static reference: the exact embedding the batch pipeline uses.
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	si := stats.Standardize(idx)
	sv := stats.Standardize(win)
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{si[i], sv[i]}
	}
	static := New(pts)

	f := Frame{
		Start:   int64(start),
		MeanPos: stats.Mean(idx), StdPos: stats.Std(idx),
		MeanVal: stats.Mean(win), StdVal: stats.Std(win),
	}

	// The frame transform must reproduce stats.Standardize bit for bit —
	// that identity is what makes every downstream probe exact.
	for i := 0; i < n; i++ {
		tp := f.Transform(int64(start+i), win[i])
		if tp != pts[i] { //cabd:lint-ignore floateq the transform contract is bit-identity with stats.Standardize
			t.Fatalf("start=%d i=%d: Transform=%v static=%v", start, i, tp, pts[i])
		}
	}

	for probe := 0; probe < 40; probe++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		d := Dist(pts[i], pts[j])
		for _, limit := range []int{1, 5, n} {
			want := static.RankAtMost(pts[i], d, j, i, limit)
			got := sl.RankAtMost(f, pts[i], d, int64(start+j), int64(start+i), limit)
			if got != want {
				t.Fatalf("start=%d rank(%d,%d,limit=%d): sliding=%d static=%d", start, i, j, limit, got, want)
			}
		}
	}

	var buf [32]Neighbor
	for probe := 0; probe < 12; probe++ {
		i := rng.Intn(n)
		for _, k := range []int{1, 3, 10} {
			want := static.KNN(pts[i], k, i)
			got := sl.KNNInto(f, pts[i], k, int64(start+i), buf[:0])
			if len(got) != len(want) {
				t.Fatalf("start=%d knn(%d,k=%d): len sliding=%d static=%d", start, i, k, len(got), len(want))
			}
			for x := range want {
				if got[x].Index != want[x].Index || got[x].Dist != want[x].Dist { //cabd:lint-ignore floateq k-NN lists must agree exactly, distances included
					t.Fatalf("start=%d knn(%d,k=%d)[%d]: sliding=%+v static=%+v", start, i, k, x, got[x], want[x])
				}
			}
		}
	}
}

// TestSlidingEvictionDropsBuckets exercises wholesale bucket expiry and
// the merge path that bounds the forest size under tiny hops.
func TestSlidingBucketBounds(t *testing.T) {
	sl := NewSliding()
	for i := 0; i < 4096; i++ {
		sl.Push(int64(i), float64(i%17))
		if i >= 64 {
			sl.EvictBefore(int64(i - 63))
		}
		sl.Flush() // worst case: one-point buckets every push
		if len(sl.buckets) > sl.maxBuckets {
			t.Fatalf("bucket count %d exceeds bound %d", len(sl.buckets), sl.maxBuckets)
		}
	}
	if got := sl.Len(); got != 64 {
		t.Fatalf("Len=%d, want 64", got)
	}
}
