package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func bruteKNNND(pts [][]float64, q []float64, k, skip int) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		if i == skip {
			continue
		}
		all = append(all, Neighbor{Index: i, Dist: distN(q, p)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestNDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(150)
			pts := make([][]float64, n)
			for i := range pts {
				row := make([]float64, dim)
				for j := range row {
					row[j] = rng.NormFloat64() * 5
				}
				pts[i] = row
			}
			tree := NewND(pts)
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.NormFloat64() * 5
			}
			k := 1 + rng.Intn(10)
			skip := -1
			if rng.Intn(2) == 0 {
				skip = rng.Intn(n)
			}
			got := tree.KNN(q, k, skip)
			want := bruteKNNND(pts, q, k, skip)
			if len(got) != len(want) {
				t.Fatalf("dim %d: len %d vs %d", dim, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("dim %d: result[%d] = %+v, want %+v", dim, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNDTiesAndRank exercises duplicate-heavy grids: exact index order
// under ties, and Rank/CountWithin agreement with brute force.
func TestNDTiesAndRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(80)
		dim := 1 + rng.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			row := make([]float64, dim)
			for j := range row {
				row[j] = float64(rng.Intn(3))
			}
			pts[i] = row
		}
		tree := NewND(pts)
		i := rng.Intn(n)
		k := 1 + rng.Intn(8)
		got := tree.KNN(pts[i], k, i)
		want := bruteKNNND(pts, pts[i], k, i)
		for x := range got {
			if got[x].Index != want[x].Index {
				t.Fatalf("trial %d: tie order index[%d] = %d, want %d",
					trial, x, got[x].Index, want[x].Index)
			}
		}
		j := rng.Intn(n)
		if j == i {
			continue
		}
		dj := distN(pts[i], pts[j])
		wantRank := 0
		for m, p := range pts {
			if m == i || m == j {
				continue
			}
			if d := distN(pts[i], p); d < dj || (d == dj && m < j) {
				wantRank++
			}
		}
		if gotRank := tree.Rank(pts[i], dj, j, i); gotRank != wantRank {
			t.Fatalf("trial %d: ND Rank = %d, want %d", trial, gotRank, wantRank)
		}
		r := rng.Float64() * 3
		wantCount := 0
		for m, p := range pts {
			if m != i && distN(pts[i], p) <= r {
				wantCount++
			}
		}
		if gotCount := tree.CountWithin(pts[i], r, i); gotCount != wantCount {
			t.Fatalf("trial %d: ND CountWithin = %d, want %d", trial, gotCount, wantCount)
		}
	}
}

func TestNDEmptyAndDegenerate(t *testing.T) {
	empty := NewND(nil)
	if empty.Len() != 0 || empty.KNN([]float64{1}, 3, -1) != nil {
		t.Error("empty ND tree misbehaves")
	}
	one := NewND([][]float64{{1, 2, 3}})
	if one.Dim() != 3 {
		t.Errorf("Dim = %d", one.Dim())
	}
	if got := one.KNN([]float64{0, 0, 0}, 5, -1); len(got) != 1 || got[0].Index != 0 {
		t.Errorf("singleton KNN = %v", got)
	}
}

func BenchmarkNDKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 10000)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	tree := NewND(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(pts[i%len(pts)], 10, i%len(pts))
	}
}
