// sliding.go implements a sliding-window variant of the KD-tree for the
// streaming engine: points arrive in index order, expire in index order
// (FIFO), and queries must answer exactly like a static tree freshly
// built over the live window — rank counts and k-NN sets are functions of
// the point set and the metric, not of the index structure, so a bucketed
// forest of small static trees with lazy eviction gives bit-identical
// answers at O(log window) insert/evict amortized cost instead of an
// O(window log window) rebuild per analysis.
//
// # Coordinates
//
// The batch pipeline embeds a window as (standardized position,
// standardized value) pairs, and both standardizations change every time
// the window slides: position i is window-relative, and the value (μ, σ)
// are window aggregates. Storing transformed coordinates would therefore
// invalidate every stored point on every hop. Instead the sliding tree
// stores raw (global position, raw value) points — which never change —
// and every query carries a Frame that maps raw points into the current
// window's standardized space on the fly, using the exact floating-point
// expression of stats.Standardize so transformed coordinates are
// bit-identical to the batch embedding. The transform is monotone per
// axis (an affine map with positive scale, or the constant zero map when
// σ = 0), so split planes chosen in raw space remain valid split planes
// in transformed space and the usual KD pruning bounds hold.
package kdtree

import "math"

// Frame maps a raw (global position, value) point into the standardized
// query space of one analysis window. MeanPos/StdPos standardize the
// window-relative positions 0..n-1 and MeanVal/StdVal the window values;
// both pairs must come from stats.Mean/stats.Std over the same inputs the
// batch path feeds stats.Standardize, so the division below reproduces
// its per-element rounding exactly. A zero σ maps the axis to zero, like
// stats.Standardize on a constant input.
type Frame struct {
	Start   int64 // global index of window position 0
	MeanPos float64
	StdPos  float64
	MeanVal float64
	StdVal  float64
}

// Transform returns the standardized embedding of the raw point (g, v)
// under the frame.
func (f Frame) Transform(g int64, v float64) [2]float64 {
	var p [2]float64
	if f.StdPos > 0 {
		p[0] = (float64(g-f.Start) - f.MeanPos) / f.StdPos
	}
	if f.StdVal > 0 {
		p[1] = (v - f.MeanVal) / f.StdVal
	}
	return p
}

// snode is one compact tree node: the raw point plus array-index links.
// Raw coordinates are immutable, so a bucket is never touched after its
// build; staleness is decided per query against the eviction watermark.
type snode struct {
	g           int64
	v           float64
	left, right int32 // index into the bucket's node array, -1 = none
	axis        uint8
}

type spoint struct {
	g int64
	v float64
}

func (p spoint) coord(axis int) float64 {
	if axis == 0 {
		return float64(p.g)
	}
	return p.v
}

// sbucket is one immutable static KD-tree over a contiguous run of
// arrivals [minG, maxG].
type sbucket struct {
	nodes      []snode
	root       int32
	minG, maxG int64
}

// live returns the number of unexpired points in the bucket under
// watermark minG (points with g < minG are stale). Arrivals are
// contiguous, so the count is a range intersection, not a scan.
func (b *sbucket) live(watermark int64) int {
	lo := b.minG
	if watermark > lo {
		lo = watermark
	}
	if lo > b.maxG {
		return 0
	}
	return int(b.maxG - lo + 1)
}

// Sliding is the sliding-window tree. Points are pushed in strictly
// consecutive global order and expired in the same order via EvictBefore;
// Flush indexes the pending arrivals before a batch of queries. Queries
// may run concurrently with each other, but not with Push/Flush/
// EvictBefore — the streaming engine serializes structure mutation per
// stream and fans out only the read-side probes.
type Sliding struct {
	buckets []sbucket
	pending []spoint
	minG    int64 // eviction watermark: g < minG is stale
	nextG   int64
	hasAny  bool

	// maxBuckets bounds the forest size: when a flush pushes the count
	// past it, the two smallest adjacent buckets merge (rebuild over
	// their live points), keeping per-query overhead O(maxBuckets · log)
	// while FIFO expiry retires old buckets wholesale.
	maxBuckets int
}

// NewSliding returns an empty sliding tree.
func NewSliding() *Sliding {
	return &Sliding{maxBuckets: 12}
}

// Push appends the raw point (g, v). Global indices must be consecutive:
// the stream assigns one index per accepted observation, and bucket
// eviction accounting relies on each bucket covering a contiguous range.
func (s *Sliding) Push(g int64, v float64) {
	if s.hasAny && g != s.nextG {
		panic("kdtree: Sliding.Push indices must be consecutive")
	}
	s.hasAny = true
	s.nextG = g + 1
	s.pending = append(s.pending, spoint{g: g, v: v})
}

// EvictBefore marks every point with global index < g as expired. Fully
// expired buckets are dropped immediately; a bucket straddling the
// watermark keeps its stale nodes until it expires wholesale, and queries
// skip them.
func (s *Sliding) EvictBefore(g int64) {
	if g <= s.minG {
		return
	}
	s.minG = g
	i := 0
	for i < len(s.buckets) && s.buckets[i].maxG < g {
		i++
	}
	if i > 0 {
		s.buckets = append(s.buckets[:0], s.buckets[i:]...)
	}
	// Pending points are never older than bucketed ones; drop expired
	// heads (possible when the window slides faster than it analyzes).
	j := 0
	for j < len(s.pending) && s.pending[j].g < g {
		j++
	}
	if j > 0 {
		s.pending = append(s.pending[:0], s.pending[j:]...)
	}
}

// Flush indexes the pending arrivals as one new bucket and re-balances
// the forest. Queries only see flushed points; the engine flushes once
// per analysis, so a hop of h arrivals costs one O(h log h) build.
func (s *Sliding) Flush() {
	if len(s.pending) > 0 {
		b := buildBucket(s.pending)
		s.pending = s.pending[:0]
		s.buckets = append(s.buckets, b)
	}
	for len(s.buckets) > s.maxBuckets {
		s.mergeSmallest()
	}
}

// Len returns the number of live (flushed, unexpired) points.
func (s *Sliding) Len() int {
	n := 0
	for i := range s.buckets {
		n += s.buckets[i].live(s.minG)
	}
	return n
}

// mergeSmallest rebuilds the adjacent bucket pair with the fewest live
// points into one bucket. Adjacency keeps each bucket's global range
// contiguous (the invariant live-counting relies on).
func (s *Sliding) mergeSmallest() {
	if len(s.buckets) < 2 {
		return
	}
	best, bestLive := 0, -1
	for i := 0; i+1 < len(s.buckets); i++ {
		l := s.buckets[i].live(s.minG) + s.buckets[i+1].live(s.minG)
		if bestLive < 0 || l < bestLive {
			best, bestLive = i, l
		}
	}
	a, b := &s.buckets[best], &s.buckets[best+1]
	pts := make([]spoint, 0, bestLive)
	pts = collectLive(pts, a, s.minG)
	pts = collectLive(pts, b, s.minG)
	merged := buildBucket(pts)
	s.buckets[best] = merged
	s.buckets = append(s.buckets[:best+1], s.buckets[best+2:]...)
}

// collectLive appends the live points of b in global order.
func collectLive(pts []spoint, b *sbucket, watermark int64) []spoint {
	lo := b.minG
	if watermark > lo {
		lo = watermark
	}
	// Nodes are permuted by the build; reconstitute arrival order by g.
	tmp := make([]spoint, 0, len(b.nodes))
	for i := range b.nodes {
		if b.nodes[i].g >= lo {
			tmp = append(tmp, spoint{g: b.nodes[i].g, v: b.nodes[i].v})
		}
	}
	// Insertion sort by g: buckets are small and mostly ordered runs.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].g < tmp[j-1].g; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return append(pts, tmp...)
}

// buildBucket builds one static KD-tree over pts (which arrive in global
// order; the build permutes a copy).
func buildBucket(pts []spoint) sbucket {
	cp := make([]spoint, len(pts))
	copy(cp, pts)
	b := sbucket{nodes: make([]snode, 0, len(cp)), minG: cp[0].g, maxG: cp[len(cp)-1].g}
	b.root = buildS(&b.nodes, cp, 0)
	return b
}

func buildS(nodes *[]snode, pts []spoint, depth int) int32 {
	if len(pts) == 0 {
		return -1
	}
	axis := depth % 2
	mid := len(pts) / 2
	medianSelectS(pts, mid, axis)
	id := int32(len(*nodes))
	*nodes = append(*nodes, snode{g: pts[mid].g, v: pts[mid].v, axis: uint8(axis), left: -1, right: -1})
	l := buildS(nodes, pts[:mid], depth+1)
	r := buildS(nodes, pts[mid+1:], depth+1)
	(*nodes)[id].left, (*nodes)[id].right = l, r
	return id
}

// medianSelectS is medianSelect over raw sliding points: Hoare
// quickselect with a median-of-three pivot on the raw axis coordinate
// (raw order equals transformed order — the frame map is monotone).
func medianSelectS(items []spoint, k, axis int) {
	lo, hi := 0, len(items)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if items[mid].coord(axis) < items[lo].coord(axis) {
			items[mid], items[lo] = items[lo], items[mid]
		}
		if items[hi].coord(axis) < items[mid].coord(axis) {
			items[hi], items[mid] = items[mid], items[hi]
			if items[mid].coord(axis) < items[lo].coord(axis) {
				items[mid], items[lo] = items[lo], items[mid]
			}
		}
		items[lo], items[mid] = items[mid], items[lo]
		p := items[lo].coord(axis)
		i, j := lo-1, hi+1
		for {
			for {
				j--
				if items[j].coord(axis) <= p {
					break
				}
			}
			for {
				i++
				if items[i].coord(axis) >= p {
					break
				}
			}
			if i >= j {
				break
			}
			items[i], items[j] = items[j], items[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
}

// RankAtMost mirrors KD.RankAtMost over the live window: it returns
// min(rank, limit) where rank counts the live points ordering strictly
// ahead of the point with global index tieG in the (distance,
// window-relative index) neighbor order of the transformed query q at
// distance d, excluding skipG and tieG themselves. Window-relative index
// order is global order shifted by Frame.Start, so ties compare g
// directly.
func (s *Sliding) RankAtMost(f Frame, q [2]float64, d float64, tieG, skipG int64, limit int) int {
	if limit <= 0 {
		return 0
	}
	count := 0
	var stack [maxStack]int32
	for bi := range s.buckets {
		b := &s.buckets[bi]
		top := 0
		cur := b.root
		for cur >= 0 || top > 0 {
			if cur < 0 {
				top--
				cur = stack[top]
			}
			nd := &b.nodes[cur]
			tp := f.Transform(nd.g, nd.v)
			if nd.g >= s.minG && nd.g != skipG && nd.g != tieG {
				dd := dist(q, tp)
				//cabd:lint-ignore floateq rank counting must mirror the exact (distance, index) tie order of the k-NN engine
				if dd < d || (dd == d && nd.g < tieG) {
					count++
					if count >= limit {
						return count
					}
				}
			}
			diff := q[nd.axis] - tp[nd.axis]
			near, far := nd.left, nd.right
			if diff > 0 {
				near, far = nd.right, nd.left
			}
			if far >= 0 && math.Abs(diff) <= d {
				stack[top] = far
				top++
			}
			cur = near
		}
	}
	return count
}

// KNNInto mirrors KD.KNNInto over the live window: the k nearest live
// neighbors of the transformed query q (excluding skipG), ascending by
// (distance, window-relative index). Neighbor.Index is window-relative
// (g - Frame.Start). The candidate heap is shared across buckets, so the
// prune bound tightens globally exactly as it does in one static tree.
func (s *Sliding) KNNInto(f Frame, q [2]float64, k int, skipG int64, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	want := k
	if live := s.Len(); want > live {
		want = live
	}
	if want == 0 {
		return nil
	}
	h := buf[:0]
	if cap(h) < want {
		h = make([]Neighbor, 0, want)
	}
	var stack [maxStack]frameFrame
	for bi := range s.buckets {
		b := &s.buckets[bi]
		top := 0
		cur := b.root
		for cur >= 0 || top > 0 {
			if cur < 0 {
				top--
				fr := stack[top]
				if len(h) == k && fr.planeDist > h[0].Dist {
					continue
				}
				cur = fr.n
			}
			nd := &b.nodes[cur]
			tp := f.Transform(nd.g, nd.v)
			if nd.g >= s.minG && nd.g != skipG {
				d := dist(q, tp)
				nb := Neighbor{Index: int(nd.g - f.Start), Dist: d}
				if len(h) < k {
					h = append(h, nb)
					siftUp(h, len(h)-1)
				} else if worse(h[0], nb) {
					h[0] = nb
					siftDown(h, 0)
				}
			}
			diff := q[nd.axis] - tp[nd.axis]
			near, far := nd.left, nd.right
			if diff > 0 {
				near, far = nd.right, nd.left
			}
			if far >= 0 {
				stack[top] = frameFrame{n: far, planeDist: math.Abs(diff)}
				top++
			}
			cur = near
		}
	}
	ascendingSort(h)
	return h
}

// frameFrame is the traversal frame of the sliding k-NN walk (int32 node
// ids instead of pointers).
type frameFrame struct {
	n         int32
	planeDist float64
}
