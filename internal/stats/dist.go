package stats

import "math"

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the inverse standard normal CDF using the
// Acklam rational approximation (relative error below 1.15e-9), which is
// more than sufficient for SAX breakpoints and ESD critical values.
// It returns -Inf/+Inf for p <= 0 / p >= 1.
func NormalQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	const pHigh = 1 - pLow
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// StudentTQuantile approximates the p-quantile of Student's t distribution
// with df degrees of freedom via the Cornish-Fisher style expansion of
// Hill (1970). Used by the Generalized ESD test (Twitter-AD baseline).
func StudentTQuantile(p float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	z := NormalQuantile(p)
	if math.IsInf(z, 0) {
		return z
	}
	// Expansion in powers of 1/df.
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	g3 := (3*math.Pow(z, 7) + 19*math.Pow(z, 5) + 17*z*z*z - 15*z) / 384
	g4 := (79*math.Pow(z, 9) + 776*math.Pow(z, 7) + 1482*math.Pow(z, 5) -
		1920*z*z*z - 945*z) / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// ChiSquareQuantile approximates the p-quantile of the chi-square
// distribution with k degrees of freedom via the Wilson-Hilferty cube
// transformation, which is accurate to a few percent for k >= 3 — enough
// for the relative-entropy baseline's detection threshold.
func ChiSquareQuantile(p, k float64) float64 {
	if k <= 0 {
		return math.NaN()
	}
	z := NormalQuantile(p)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// GaussianPDF evaluates the normal density with the given mean and
// standard deviation. A zero sd returns +Inf at the mean and 0 elsewhere.
func GaussianPDF(x, mean, sd float64) float64 {
	if sd <= 0 {
		if ApproxEq(x, mean, 0) {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - mean) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi))
}
