// Package stats provides the robust statistics primitives used throughout
// the CABD reproduction: moments, medians, MAD (Definition 4 of the paper),
// quantiles, histograms and normalization helpers.
//
// All functions operate on []float64 and never modify their input unless
// explicitly documented. NaN handling: inputs are assumed NaN-free — the
// internal/sanitize layer enforces this at every public entry point, and
// the synthetic generators produce clean series by construction.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n), or 0 when
// len(xs) < 2. The population form matches Equation 2 of the paper, where
// series are standardized by the dataset standard deviation.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Variance2 returns the population variance of the virtual concatenation
// a++b without materializing it. Both passes (mean, then squared
// deviations) visit a before b, so the accumulation order — and therefore
// the float64 result — is bit-identical to Variance(append(a, b...)).
// It exists for the scoring hot path, which needs the variance of a
// window with its center span cut out.
func Variance2(a, b []float64) float64 {
	n := len(a) + len(b)
	if n < 2 {
		return 0
	}
	var s float64
	for _, x := range a {
		s += x
	}
	for _, x := range b {
		s += x
	}
	m := s / float64(n)
	s = 0
	for _, x := range a {
		d := x - m
		s += d * d
	}
	for _, x := range b {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// Std2 returns the population standard deviation of the virtual
// concatenation a++b, bit-identical to Std(append(a, b...)).
func Std2(a, b []float64) float64 {
	return math.Sqrt(Variance2(a, b))
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// SampleStd returns the unbiased sample standard deviation.
func SampleStd(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}

// Median returns the median of xs without modifying it, or 0 for an empty
// slice. Even-length inputs return the midpoint of the two central values.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MAD returns the Median Absolute Deviation of xs (Definition 4):
// median(|x_i - median(xs)|). It is the robust dispersion measure the
// candidate-estimation step uses.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// RobustZ returns |x - median| / MAD for every element, the robust z-score
// used to select candidate points. When MAD is zero (constant data), the
// score is 0 where x equals the median and +Inf elsewhere.
func RobustZ(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	med := Median(xs)
	mad := MAD(xs)
	for i, x := range xs {
		d := math.Abs(x - med)
		switch {
		case mad > 0:
			out[i] = d / mad
		case d == 0:
			out[i] = 0
		default:
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element, or -1 for an empty slice.
// Ties resolve to the first occurrence.
func ArgMax(xs []float64) int {
	idx := -1
	best := math.Inf(-1)
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// ArgMin returns the index of the minimum element, or -1 for an empty slice.
func ArgMin(xs []float64) int {
	idx := -1
	best := math.Inf(1)
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return idx
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, matching the common "type 7"
// definition. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return cp[n-1]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// ApproxEq reports whether a and b agree to within tol. It is the
// sanctioned float comparison of the codebase (the floateq lint rule bans
// raw == / != between floats): tol 0 demands exact agreement — use it
// only where bit-level identity is the contract (flatline detection,
// degenerate distributions) — and NaN never equals anything, matching
// IEEE semantics.
func ApproxEq(a, b, tol float64) bool {
	if a == b { //cabd:lint-ignore floateq the one sanctioned exact comparison; every tolerance check funnels through here
		return true // covers equal infinities, which Abs(a-b) would turn into NaN
	}
	return math.Abs(a-b) <= tol
}

// Standardize rescales xs in place-free fashion to zero mean and unit
// standard deviation (Equation 2). A constant series maps to all zeros.
func Standardize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := Std(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the counts plus the bin edges (len nbins+1). Values equal to max fall in
// the last bin. A degenerate range produces all mass in bin 0.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	if nbins < 1 {
		nbins = 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	if len(xs) == 0 {
		return counts, edges
	}
	lo, hi := Min(xs), Max(xs)
	if hi <= lo {
		for i := range edges {
			edges[i] = lo
		}
		counts[0] = len(xs)
		return counts, edges
	}
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[nbins] = hi
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length slices, or 0 when either side has zero variance.
func Correlation(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// RMS returns the root-mean-square difference between two equal-length
// slices, the repair-quality metric of Section V-G. Mismatched lengths
// compare over the shorter prefix.
func RMS(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
