package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance singleton = %v, want 0", got)
	}
	if got := SampleVariance(xs); !almostEq(got, 4*8.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v", got)
	}
}

// TestStd2BitIdentical: Variance2/Std2 over the split pair must match the
// materialized concatenation bit for bit — the scoring hot path swaps one
// for the other and results may not drift by even one ulp.
func TestStd2BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		cut := 0
		if n > 0 {
			cut = rng.Intn(n + 1)
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Exp(float64(rng.Intn(9)-4))
		}
		a, b := xs[:cut], xs[cut:]
		concat := append(append([]float64{}, a...), b...)
		if got, want := Variance2(a, b), Variance(concat); got != want {
			t.Fatalf("trial %d: Variance2 = %v, Variance(concat) = %v", trial, got, want)
		}
		if got, want := Std2(a, b), Std(concat); got != want {
			t.Fatalf("trial %d: Std2 = %v, Std(concat) = %v", trial, got, want)
		}
	}
	if got := Std2(nil, []float64{3}); got != 0 {
		t.Errorf("Std2 singleton = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	// Median must not reorder the input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestMAD(t *testing.T) {
	// Classic example: median 2, deviations {1,1,0,0,2,7} -> median 1.
	xs := []float64{1, 1, 2, 2, 4, 9}
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD([]float64{5, 5, 5}); got != 0 {
		t.Errorf("MAD constant = %v, want 0", got)
	}
}

func TestRobustZ(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 9}
	z := RobustZ(xs)
	if !almostEq(z[5], 7, 1e-12) {
		t.Errorf("z[5] = %v, want 7", z[5])
	}
	// Constant data: zero everywhere the value matches, Inf otherwise.
	z2 := RobustZ([]float64{3, 3, 3, 4})
	if z2[0] != 0 || !math.IsInf(z2[3], 1) {
		t.Errorf("constant-data robust z = %v", z2)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	s := Standardize(xs)
	if !almostEq(Mean(s), 0, 1e-12) || !almostEq(Std(s), 1, 1e-12) {
		t.Errorf("standardized mean/std = %v/%v", Mean(s), Std(s))
	}
	// Constant input maps to zeros, not NaN.
	for _, v := range Standardize([]float64{7, 7, 7}) {
		if v != 0 {
			t.Errorf("constant standardize produced %v", v)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 4}
	counts, edges := Histogram(xs, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
	if edges[0] != 0 || edges[4] != 4 {
		t.Errorf("edges = %v", edges)
	}
	// Max value lands in the last bin.
	if counts[3] == 0 {
		t.Error("max value missing from last bin")
	}
	// Degenerate range.
	c2, _ := Histogram([]float64{2, 2, 2}, 3)
	if c2[0] != 3 {
		t.Errorf("degenerate histogram = %v", c2)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := Correlation(a, b); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{10, 8, 6, 4, 2}
	if got := Correlation(a, c); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Correlation(a, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("zero-variance correlation = %v", got)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("identical RMS = %v", got)
	}
	if got := RMS([]float64{0, 0}, []float64{3, 4}); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEq(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if NormalQuantile(0.5) != 0 {
		t.Errorf("median quantile = %v", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles not infinite")
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Known value: t_{0.975, 10} = 2.228.
	if got := StudentTQuantile(0.975, 10); !almostEq(got, 2.228, 0.01) {
		t.Errorf("t quantile = %v, want ~2.228", got)
	}
	// Converges to the normal quantile as df grows.
	if got := StudentTQuantile(0.975, 1e6); !almostEq(got, 1.959964, 1e-3) {
		t.Errorf("large-df t quantile = %v", got)
	}
}

func TestChiSquareQuantile(t *testing.T) {
	// chi2_{0.95, 10} = 18.307.
	if got := ChiSquareQuantile(0.95, 10); !almostEq(got, 18.307, 0.2) {
		t.Errorf("chi2 quantile = %v, want ~18.307", got)
	}
}

func TestGaussianPDF(t *testing.T) {
	if got := GaussianPDF(0, 0, 1); !almostEq(got, 0.3989422804, 1e-9) {
		t.Errorf("pdf(0) = %v", got)
	}
	if got := GaussianPDF(1, 0, 0); got != 0 {
		t.Errorf("degenerate pdf off-mean = %v", got)
	}
}

// Property: MAD is translation invariant and scales with |c|.
func TestMADPropertyInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 3 {
			return true
		}
		base := MAD(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + 17.5
			scaled[i] = v * -3
		}
		return almostEq(MAD(shifted), base, 1e-9*(1+base)) &&
			almostEq(MAD(scaled), 3*base, 1e-9*(1+base))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuantilePropertyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		qs := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			if v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				t.Fatalf("quantile out of range: %v", v)
			}
			prev = v
		}
	}
}

// Property: standardization yields mean 0 / std 1 for any non-constant input.
func TestStandardizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 10
		}
		s := Standardize(xs)
		return almostEq(Mean(s), 0, 1e-9) && almostEq(Std(s), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: histogram counts always sum to len(input).
func TestHistogramProperty(t *testing.T) {
	f := func(seed int64, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 - 50
		}
		bins := int(nb%32) + 1
		counts, edges := Histogram(xs, bins)
		if len(edges) != bins+1 {
			return false
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, -1}
	if ArgMax(xs) != 2 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty arg extrema should be -1")
	}
}

func TestQuantileMatchesSortedExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if Quantile(xs, 0) != sorted[0] || Quantile(xs, 1) != sorted[100] {
		t.Error("quantile extremes disagree with sort")
	}
	if got := Quantile(xs, 0.5); got != sorted[50] {
		t.Errorf("median quantile = %v, want %v", got, sorted[50])
	}
}

// TestApproxEq pins the sanctioned float comparison: tolerance semantics,
// the exact-equality fast path for infinities (where Abs(a-b) is NaN),
// and NaN never comparing equal.
func TestApproxEq(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, math.Nextafter(1, 2), 0, false},
		{1.0, 1.1, 0.2, true},
		{1.0, 1.3, 0.2, false},
		{inf, inf, 0, true},
		{-inf, -inf, 0, true},
		{inf, -inf, math.MaxFloat64, false},
		{math.NaN(), math.NaN(), inf, false},
		{math.NaN(), 1, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEq(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
		if got := ApproxEq(c.b, c.a, c.tol); got != c.want {
			t.Errorf("ApproxEq(%v, %v, %v) = %v, want symmetric %v", c.b, c.a, c.tol, got, c.want)
		}
	}
}

// Regression for the ApproxEq migration: the degenerate sd=0 spike must
// still be exact — at the mean (even an infinite one) the density is a
// point mass, one ulp away it is zero.
func TestGaussianPDFDegenerateExact(t *testing.T) {
	if got := GaussianPDF(2, 2, 0); !math.IsInf(got, 1) {
		t.Errorf("degenerate pdf at mean = %v, want +Inf", got)
	}
	if got := GaussianPDF(math.Inf(1), math.Inf(1), 0); !math.IsInf(got, 1) {
		t.Errorf("degenerate pdf at infinite mean = %v, want +Inf", got)
	}
	if got := GaussianPDF(math.Nextafter(2, 3), 2, 0); got != 0 {
		t.Errorf("degenerate pdf one ulp off mean = %v, want 0", got)
	}
}
