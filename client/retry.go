package client

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"cabd/httpapi"
)

// Backoff is a capped exponential retry schedule with seeded jitter:
// attempt k waits Base·Factor^k, capped at Max, then spread by ±Jitter/2
// around the nominal value by a seeded rng — deterministic, so tests
// assert the exact delay sequence instead of sleeping. A Retry-After
// hint from the server overrides the computed delay when it is larger
// (the server knows its own saturation horizon better than the client).
type Backoff struct {
	// Base is the first delay (default 100ms); Max caps the growth
	// (default 30s); Factor is the per-attempt multiplier (default 2).
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the fractional spread: a delay d becomes uniform in
	// [d·(1−Jitter/2), d·(1+Jitter/2)] (default 0.2; negative
	// disables jitter entirely).
	Jitter float64
	// Seed drives the jitter rng (default 1).
	Seed int64
}

func (b Backoff) defaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// Schedule returns a fresh delay iterator over the backoff. Each
// Schedule owns its own seeded rng, so two schedules with the same
// Backoff produce identical sequences.
func (b Backoff) Schedule() *Schedule {
	b = b.defaults()
	return &Schedule{b: b, rng: rand.New(rand.NewSource(b.Seed))}
}

// Schedule iterates one retry episode's delays. Not safe for concurrent
// use; each retried request gets its own.
type Schedule struct {
	b       Backoff
	rng     *rand.Rand
	attempt int
}

// Next returns the delay before the next attempt. retryAfterSeconds is
// the server's Retry-After hint (0 when absent); when it exceeds the
// computed delay it wins, uncapped — honoring the server is the point.
func (s *Schedule) Next(retryAfterSeconds int) time.Duration {
	d := float64(s.b.Base)
	for i := 0; i < s.attempt; i++ {
		d *= s.b.Factor
		if d >= float64(s.b.Max) {
			break
		}
	}
	if d > float64(s.b.Max) {
		d = float64(s.b.Max)
	}
	if s.b.Jitter > 0 {
		d *= 1 - s.b.Jitter/2 + s.b.Jitter*s.rng.Float64()
	}
	s.attempt++
	out := time.Duration(d)
	if ra := time.Duration(retryAfterSeconds) * time.Second; ra > out {
		out = ra
	}
	return out
}

// Attempt reports how many delays have been handed out.
func (s *Schedule) Attempt() int { return s.attempt }

// Reset rewinds the exponential growth after a success (the jitter rng
// keeps advancing, so reused schedules stay deterministic end to end).
func (s *Schedule) Reset() { s.attempt = 0 }

// RetryPolicy makes every JSON round trip of the client retry transient
// failures — transport errors and 429/5xx replies — behind a Backoff.
// Install it with WithRetry.
type RetryPolicy struct {
	// Backoff is the delay schedule (zero value takes the defaults).
	Backoff Backoff
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// ShouldRetry classifies errors (default Retryable).
	ShouldRetry func(error) bool
	// Sleep waits between attempts; the default honors ctx
	// cancellation. Tests inject a recorder to assert the exact
	// schedule without sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) defaults() RetryPolicy {
	// Backoff stays raw here; Schedule() applies its defaults, and
	// normalizing twice would re-expand an explicitly disabled jitter.
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.ShouldRetry == nil {
		p.ShouldRetry = Retryable
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// WithRetry installs a retry policy on every JSON round trip (Detect,
// DetectBatch, Ingest, the session endpoints). Streaming ingest pushes
// are not retried — their NDJSON bodies are consumed by the attempt.
func WithRetry(p RetryPolicy) Option {
	pol := p.defaults()
	return func(c *Client) { c.retry = &pol }
}

// Retryable is the default transient-failure classifier: transport
// errors (connection refused/reset, EOF) and 429/500/502/503/504
// replies retry; everything else — 4xx validation errors above all —
// fails fast.
func Retryable(err error) bool {
	var serr *httpapi.StatusError
	if errors.As(err, &serr) {
		switch serr.Status {
		case 429, 500, 502, 503, 504:
			return true
		}
		return false
	}
	// Non-status errors from do() are transport-level (dial, reset,
	// truncated body): the request may never have reached the server.
	return err != nil
}

// retryAfterOf extracts the server's Retry-After hint, 0 when absent.
func retryAfterOf(err error) int {
	var serr *httpapi.StatusError
	if errors.As(err, &serr) {
		return serr.RetryAfterSeconds
	}
	return 0
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
