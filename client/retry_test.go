package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cabd/httpapi"
)

// TestScheduleExactNoJitter pins the capped exponential schedule
// exactly: with jitter off the delays are pure Base·Factor^k clamped at
// Max.
func TestScheduleExactNoJitter(t *testing.T) {
	s := zeroJitter(100*time.Millisecond, time.Second).Schedule()
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := s.Next(0); got != w {
			t.Fatalf("delay[%d] = %v, want %v", i, got, w)
		}
	}
}

// zeroJitter builds a deterministic jitterless backoff (negative
// Jitter disables the spread).
func zeroJitter(base, max time.Duration) Backoff {
	return Backoff{Base: base, Max: max, Factor: 2, Jitter: -1, Seed: 1}
}

// TestScheduleJitterDeterministic asserts (a) two schedules with the
// same seed yield identical sequences, (b) jitter stays within the
// ±Jitter/2 band, (c) a different seed yields a different sequence.
func TestScheduleJitterDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.2, Seed: 7}
	s1, s2 := b.Schedule(), b.Schedule()
	nominal := 100 * time.Millisecond
	for i := 0; i < 6; i++ {
		d1, d2 := s1.Next(0), s2.Next(0)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, d1, d2)
		}
		lo := time.Duration(float64(nominal) * 0.9)
		hi := time.Duration(float64(nominal) * 1.1)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: %v outside jitter band [%v, %v]", i, d1, lo, hi)
		}
		if nominal < 10*time.Second {
			nominal *= 2
		}
	}
	other := b
	other.Seed = 8
	if o := other.Schedule().Next(0); o == b.Schedule().Next(0) {
		t.Fatalf("different seeds produced identical first delay %v", o)
	}
}

// TestScheduleHonorsRetryAfter: the server's hint wins when it exceeds
// the computed delay, and is ignored when smaller.
func TestScheduleHonorsRetryAfter(t *testing.T) {
	s := zeroJitter(100*time.Millisecond, 10*time.Second).Schedule()
	if got := s.Next(2); got != 2*time.Second {
		t.Fatalf("Retry-After 2s not honored: got %v", got)
	}
	// Attempt 1 nominal is 200ms; a 0s hint leaves it alone.
	if got := s.Next(0); got != 200*time.Millisecond {
		t.Fatalf("hintless delay = %v, want 200ms", got)
	}
	// Nominal 400ms > 0s hint again; 1s hint beats it.
	if got := s.Next(1); got != time.Second {
		t.Fatalf("Retry-After 1s not honored over 400ms: got %v", got)
	}
}

// TestScheduleReset rewinds growth but keeps iterating the same rng.
func TestScheduleReset(t *testing.T) {
	s := zeroJitter(100*time.Millisecond, 10*time.Second).Schedule()
	s.Next(0)
	s.Next(0)
	s.Reset()
	if got := s.Next(0); got != 100*time.Millisecond {
		t.Fatalf("post-Reset delay = %v, want base 100ms", got)
	}
}

// retryClient builds a client against url whose sleeps record into got
// instead of sleeping.
func retryClient(url string, attempts int, got *[]time.Duration) *Client {
	return New(url, WithRetry(RetryPolicy{
		Backoff:     zeroJitter(100*time.Millisecond, 10*time.Second),
		MaxAttempts: attempts,
		Sleep: func(_ context.Context, d time.Duration) error {
			*got = append(*got, d)
			return nil
		},
	}))
}

// TestClientRetries429 drives a server that sheds twice with 429 +
// Retry-After before accepting, and asserts the call succeeds with the
// exact hinted delays.
func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"saturated","retry_after_seconds":3}`))
			return
		}
		_, _ = w.Write([]byte(`{"accepted":1,"duplicates":0,"total":1}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv.URL, 4, &slept)
	out, err := c.Ingest(context.Background(), httpapi.IngestRequest{
		Agent:      "a",
		Detections: []httpapi.ForwardedDetection{{Key: "a/s/1", Stream: "s", Index: 1}},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if out.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", out.Accepted)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

// TestClientRetryGivesUp exhausts MaxAttempts against a hard-down
// server and surfaces the final StatusError.
func TestClientRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"down"}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv.URL, 3, &slept)
	_, err := c.Ingest(context.Background(), httpapi.IngestRequest{Agent: "a"})
	var serr *httpapi.StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 StatusError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (MaxAttempts)", calls.Load())
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

// TestClientNoRetryOnValidation: 4xx client errors fail fast.
func TestClientNoRetryOnValidation(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad"}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv.URL, 4, &slept)
	if _, err := c.Ingest(context.Background(), httpapi.IngestRequest{Agent: "a"}); err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d slept=%v, want exactly one attempt, no sleeps", calls.Load(), slept)
	}
}

// TestClientRetrySleepCancelled: a cancelled context surfaces from the
// sleep instead of hammering the server.
func TestClientRetrySleepCancelled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"down"}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(srv.URL, WithRetry(RetryPolicy{
		Backoff:     zeroJitter(time.Millisecond, time.Second),
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}))
	if _, err := c.Ingest(ctx, httpapi.IngestRequest{Agent: "a"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRetryableClassification pins the default classifier.
func TestRetryableClassification(t *testing.T) {
	for _, status := range []int{429, 500, 502, 503, 504} {
		if !Retryable(&httpapi.StatusError{Status: status}) {
			t.Errorf("status %d should retry", status)
		}
	}
	for _, status := range []int{400, 404, 409, 413, 422} {
		if Retryable(&httpapi.StatusError{Status: status}) {
			t.Errorf("status %d should fail fast", status)
		}
	}
	if !Retryable(errors.New("dial tcp: connection refused")) {
		t.Error("transport errors should retry")
	}
	if Retryable(nil) {
		t.Error("nil error should not retry")
	}
}
