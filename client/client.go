// Package client is the public Go client of the cabd serving layer
// (cmd/cabd-serve). It speaks the cabd/httpapi wire contract over plain
// net/http: one-shot and batch detection, NDJSON streaming ingest, and
// the interactive labeling-session lifecycle, including a RunSession
// driver that loops pending-candidate → label until the session
// converges.
//
// Every non-2xx reply surfaces as a *httpapi.StatusError; a 429
// backpressure shed carries the server's Retry-After hint in
// RetryAfterSeconds.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cabd/httpapi"
)

// Client talks to one cabd-serve instance.
type Client struct {
	base  string
	http  *http.Client
	retry *RetryPolicy
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (e.g. for custom
// transports or timeouts).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one JSON round trip, retrying transient failures when a
// RetryPolicy is installed (WithRetry). The request body is re-encoded
// per attempt, so retried POSTs never replay a consumed reader.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.retry == nil {
		return c.doOnce(ctx, method, path, in, out)
	}
	sched := c.retry.Backoff.Schedule()
	for {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		if sched.Attempt() >= c.retry.MaxAttempts-1 || !c.retry.ShouldRetry(err) {
			return err
		}
		if serr := c.retry.Sleep(ctx, sched.Next(retryAfterOf(err))); serr != nil {
			return serr
		}
	}
}

// doOnce issues one JSON round trip. A nil in decodes into nothing-sent
// (GET/DELETE); a nil out discards the body.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cabd client: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("cabd client: build %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cabd client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cabd client: decode %s %s reply: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx reply into a *httpapi.StatusError,
// preferring the JSON error body and falling back to the Retry-After
// header for the backoff hint.
func decodeError(resp *http.Response) error {
	serr := &httpapi.StatusError{Status: resp.StatusCode}
	var body httpapi.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		serr.Message = body.Error
		serr.RetryAfterSeconds = body.RetryAfterSeconds
	} else {
		serr.Message = http.StatusText(resp.StatusCode)
	}
	if serr.RetryAfterSeconds == 0 {
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			serr.RetryAfterSeconds = ra
		}
	}
	return serr
}

// Detect runs one unsupervised detection.
func (c *Client) Detect(ctx context.Context, series []float64, opts *httpapi.DetectOptions) (*httpapi.DetectResponse, error) {
	var out httpapi.DetectResponse
	err := c.do(ctx, http.MethodPost, "/v1/detect", httpapi.DetectRequest{Series: series, Options: opts}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DetectMulti runs one unsupervised multivariate detection over d
// equal-length channels sampled on the same clock. Detection indices in
// the reply are time steps into the submitted channels.
func (c *Client) DetectMulti(ctx context.Context, channels [][]float64, opts *httpapi.DetectOptions) (*httpapi.DetectResponse, error) {
	var out httpapi.DetectResponse
	err := c.do(ctx, http.MethodPost, "/v1/detect/multi", httpapi.MultiDetectRequest{Channels: channels, Options: opts}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DetectBatch runs a whole series set in one request.
func (c *Client) DetectBatch(ctx context.Context, seriesSet [][]float64, opts *httpapi.DetectOptions) (*httpapi.BatchDetectResponse, error) {
	var out httpapi.BatchDetectResponse
	err := c.do(ctx, http.MethodPost, "/v1/detect/batch", httpapi.BatchDetectRequest{SeriesSet: seriesSet, Options: opts}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamPush appends observations to the stream named id (created on
// first use) and returns the detections confirmed so far. The id is
// path-escaped on the wire, so slash-scoped tenant ids ("acme/s-17")
// travel as one path segment and keep their server-side quota grouping.
func (c *Client) StreamPush(ctx context.Context, id string, values []float64) (*httpapi.StreamIngestResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // one observation per line: NDJSON
	for _, v := range values {
		if err := enc.Encode(v); err != nil {
			return nil, fmt.Errorf("cabd client: encode stream value: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/stream/"+url.PathEscape(id), &buf)
	if err != nil {
		return nil, fmt.Errorf("cabd client: build stream push: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cabd client: push stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp)
	}
	var out httpapi.StreamIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cabd client: decode stream reply: %w", err)
	}
	return &out, nil
}

// StreamClose flushes the stream (final analysis with no trailing
// margin) and evicts it, returning the remaining detections.
func (c *Client) StreamClose(ctx context.Context, id string) (*httpapi.StreamIngestResponse, error) {
	var out httpapi.StreamIngestResponse
	err := c.do(ctx, http.MethodDelete, "/v1/stream/"+url.PathEscape(id), nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Ingest forwards a batch of agent-side detections (POST /v1/ingest).
// Batches carry per-detection idempotency keys, so resending after an
// ambiguous failure is safe: the server acknowledges duplicates instead
// of double counting them.
func (c *Client) Ingest(ctx context.Context, req httpapi.IngestRequest) (*httpapi.IngestResponse, error) {
	var out httpapi.IngestResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ingest", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestStats fetches the server-side forwarded-detection totals
// (GET /v1/ingest), the loss-accounting view of the collector fleet.
func (c *Client) IngestStats(ctx context.Context) (*httpapi.IngestStats, error) {
	var out httpapi.IngestStats
	if err := c.do(ctx, http.MethodGet, "/v1/ingest", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateSession starts an interactive labeling session.
func (c *Client) CreateSession(ctx context.Context, req httpapi.SessionRequest) (*httpapi.SessionStatus, error) {
	var out httpapi.SessionStatus
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sessions lists the live sessions.
func (c *Client) Sessions(ctx context.Context) (*httpapi.SessionList, error) {
	var out httpapi.SessionList
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Session fetches one session's status (result included once done).
func (c *Client) Session(ctx context.Context, id string) (*httpapi.SessionStatus, error) {
	var out httpapi.SessionStatus
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Pending fetches the session's uncertainty-sampled candidate awaiting
// a label, if any.
func (c *Client) Pending(ctx context.Context, id string) (*httpapi.SessionStatus, error) {
	var out httpapi.SessionStatus
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/pending", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PostLabel answers the session's pending candidate.
func (c *Client) PostLabel(ctx context.Context, id string, index int, label string) (*httpapi.SessionStatus, error) {
	var out httpapi.SessionStatus
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/labels", httpapi.LabelRequest{Index: index, Label: label}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelSession cancels and removes the session.
func (c *Client) CancelSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// RunSession drives a session to completion: it creates the session,
// then loops polling the pending candidate and answering it with the
// label function (which sees the candidate's index and value) until the
// session reports done, failed or cancelled. poll bounds the wait
// between status checks when the pipeline is computing (default 10ms).
func (c *Client) RunSession(ctx context.Context, req httpapi.SessionRequest, label func(index int, value float64) string, poll time.Duration) (*httpapi.SessionStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	st, err := c.CreateSession(ctx, req)
	if err != nil {
		return nil, err
	}
	id := st.ID
	for {
		switch st.State {
		case httpapi.StateDone, httpapi.StateFailed, httpapi.StateCancelled:
			return st, nil
		case httpapi.StateAwaitingLabel:
			if st.Pending == nil {
				// Raced the pipeline between states; re-poll below.
				break
			}
			st, err = c.PostLabel(ctx, id, st.Pending.Index, label(st.Pending.Index, st.Pending.Value))
			if err != nil {
				return nil, err
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
		if st, err = c.Pending(ctx, id); err != nil {
			return nil, err
		}
	}
}
