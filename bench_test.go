// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V). Each benchmark runs its experiment at a reduced
// scale (so `go test -bench=. -benchmem` completes in minutes) and
// reports the headline quantities as custom metrics; the full paper-scale
// tables print via `go run ./cmd/cabd-bench`. The per-experiment mapping
// lives in DESIGN.md, measured-vs-paper numbers in EXPERIMENTS.md.
package cabd

import (
	"math/rand"
	"strings"
	"testing"

	"cabd/internal/experiments"
	"cabd/internal/inn"
	"cabd/internal/series"
)

// benchScale keeps every benchmark iteration in the hundreds of
// milliseconds to seconds range.
var benchScale = experiments.Scale{
	SynthN: 1000, SynthCount: 2,
	YahooN: 1000, YahooCount: 2,
	KPIN: 2000, KPICount: 1,
	IoTN: 800,
}

func BenchmarkTable1_Quality(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(benchScale)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.ALAPF, r.Dataset+"_AP_F_AL_%")
		if r.HasChange {
			b.ReportMetric(100*r.ALCPF, r.Dataset+"_CP_F_AL_%")
		}
		b.ReportMetric(r.Queries, r.Dataset+"_queries")
	}
}

func BenchmarkFig1_IoTExample(b *testing.B) {
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig1(benchScale)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.APF, r.Algorithm+"_AP_F_%")
	}
}

func BenchmarkFig3_Clustering(b *testing.B) {
	var clusters []experiments.Fig3Cluster
	for i := 0; i < b.N; i++ {
		clusters = experiments.Fig3(benchScale)
	}
	b.ReportMetric(float64(len(clusters)), "clusters")
}

func BenchmarkFig5_BNF(b *testing.B) {
	var pts []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig5(benchScale)
	}
	var avg float64
	for _, p := range pts {
		avg += p.BNF
	}
	b.ReportMetric(avg/float64(len(pts)), "avg_BNF")
}

func BenchmarkFig6_Confidence(b *testing.B) {
	sc := experiments.Scale{SynthN: 800, SynthCount: 1, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig6(sc)
	}
	// Report the γ = 0.8 low-density cell, Table I's default setting.
	for _, p := range pts {
		if p.Confidence == 0.8 && p.AnomalyPct == 1 {
			b.ReportMetric(100*p.APF, "AP_F_1pct_gamma08_%")
			b.ReportMetric(float64(p.Queries), "queries_1pct_gamma08")
		}
	}
}

func BenchmarkFig7_Unsupervised(b *testing.B) {
	var rows []experiments.CompareRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(benchScale)
	}
	for _, r := range rows {
		if r.Algorithm == "CABD" {
			b.ReportMetric(100*r.F1, "CABD_"+r.Family+"_F_%")
		}
	}
}

func BenchmarkFig8_Supervised(b *testing.B) {
	var rows []experiments.CompareRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(benchScale)
	}
	for _, r := range rows {
		if r.Algorithm == "CABD+AL" {
			b.ReportMetric(100*r.F1, "CABD_AL_"+r.Family+"_F_%")
		}
	}
}

func BenchmarkFig9_ChangePoint(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(benchScale)
	}
	for _, r := range rows {
		if r.Algorithm == "CABD w/ AL" || r.Algorithm == "PELT" {
			b.ReportMetric(100*r.F1, metricName(r.Family+"_"+r.Algorithm+"_F_%"))
		}
	}
}

func BenchmarkFig10_Combined(b *testing.B) {
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig10(benchScale)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.F1, metricName(r.Family+"_"+r.Algorithm+"_F_%"))
	}
}

// metricName makes a label safe for testing.B.ReportMetric (no spaces).
func metricName(s string) string {
	return strings.NewReplacer(" ", "", "/", "", "(", "", ")", "").Replace(s)
}

// innBenchComputer builds the shared fixture for the probe-engine
// benchmarks: a 2k-point noisy series with a few collective anomalies, so
// neighborhoods have realistic structure (the Fig. 11 anchor size).
func innBenchComputer() (*inn.Computer, int) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for _, at := range []int{300, 800, 1300, 1800} {
		for j := 0; j < 6; j++ {
			vals[at+j] += 40
		}
	}
	c := inn.FromSeries(series.New("bench", vals))
	return c, c.RangeLimit(0)
}

// benchINNEngines runs one neighborhood strategy under the legacy
// (full-k-NN-probe) engine, the rank-query engine, and the rank engine
// with a shared memo — the old-vs-new comparison backing the engine swap.
func benchINNEngines(b *testing.B, call func(c *inn.Computer, i, tlim int) []int) {
	base, tlim := innBenchComputer()
	engines := []struct {
		name string
		c    *inn.Computer
	}{
		{"legacy", base.WithLegacyProbes(true)},
		{"rank", base.WithLegacyProbes(false)},
		{"rank+memo", base.WithLegacyProbes(false).WithRankMemo(0)},
	}
	for _, eng := range engines {
		eng := eng
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				call(eng.c, i%eng.c.Len(), tlim)
			}
		})
	}
}

func BenchmarkINNBinary(b *testing.B) {
	benchINNEngines(b, func(c *inn.Computer, i, tlim int) []int { return c.Binary(i, tlim) })
}

func BenchmarkINNMinimal(b *testing.B) {
	benchINNEngines(b, func(c *inn.Computer, i, tlim int) []int { return c.Minimal(i, tlim) })
}

func BenchmarkINNMutualSet(b *testing.B) {
	benchINNEngines(b, func(c *inn.Computer, i, tlim int) []int { return c.MutualSet(i, tlim) })
}

func BenchmarkFig11_Runtime(b *testing.B) {
	var pts []experiments.Fig11Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig11([]int{2000})
	}
	for _, p := range pts {
		b.ReportMetric(p.Seconds, metricName(p.Algorithm+"_s"))
	}
}

func BenchmarkTable2_ALTrace(b *testing.B) {
	sc := experiments.Scale{SynthN: 400, SynthCount: 1, YahooN: 800,
		YahooCount: 3, KPIN: 800, KPICount: 1, IoTN: 800}
	var traces []experiments.Table2Trace
	for i := 0; i < b.N; i++ {
		traces = experiments.Table2(sc)
	}
	var finalAcc float64
	for _, tr := range traces {
		if len(tr.Rounds) > 0 {
			finalAcc += tr.Rounds[len(tr.Rounds)-1].Accuracy
		}
	}
	b.ReportMetric(finalAcc/float64(len(traces)), "avg_final_accuracy")
}

func BenchmarkFig12_INNvsKNN(b *testing.B) {
	sc := experiments.Scale{SynthN: 800, SynthCount: 1, YahooN: 800,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}
	var rows []experiments.Fig12Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig12(sc)
	}
	for _, r := range rows {
		if r.Task == "anomaly" {
			b.ReportMetric(100*r.ALF, r.Variant+"_"+r.Family+"_F_%")
		}
	}
}

func BenchmarkFig13_ScoreAblation(b *testing.B) {
	sc := experiments.Scale{SynthN: 400, SynthCount: 1, YahooN: 800,
		YahooCount: 2, KPIN: 1500, KPICount: 1, IoTN: 400}
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig13(sc)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.ALF, r.Family+"_"+r.Scores+"_F_%")
	}
}

func BenchmarkFig14_Repair(b *testing.B) {
	sc := experiments.Scale{SynthN: 800, SynthCount: 3, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}
	var rows []experiments.Fig14Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig14(sc)
	}
	var before, guided, random float64
	for _, r := range rows {
		before += r.RMSBefore
		guided += r.RMSCABD
		random += r.RMSRandom
	}
	n := float64(len(rows))
	b.ReportMetric(before/n, "RMS_dirty")
	b.ReportMetric(guided/n, "RMS_IMR_CABD")
	b.ReportMetric(random/n, "RMS_IMR_random")
}

// BenchmarkDetectUnsupervised2k measures the core detector itself at the
// Figure 11 anchor size (2k points), the paper's 0.16-0.21 s row.
func BenchmarkDetectUnsupervised2k(b *testing.B) {
	sc := experiments.Scale{SynthN: 2000, SynthCount: 1, YahooN: 2000,
		YahooCount: 1, KPIN: 2000, KPICount: 1, IoTN: 800}
	ds := sc.YahooSuite()[0]
	det := newBenchDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(ds.S.Values)
	}
}

func newBenchDetector() *Detector { return New(Options{}) }

// BenchmarkDetect2kObs compares the 2k-point pipeline with no recorder
// against one with a shared Recorder attached. The nil case must stay
// within noise of BenchmarkDetectUnsupervised2k (the recorder hooks are
// nil-checked no-ops, zero extra allocations); the enabled case bounds the
// real instrumentation cost (<5% is the acceptance budget).
func BenchmarkDetect2kObs(b *testing.B) {
	sc := experiments.Scale{SynthN: 2000, SynthCount: 1, YahooN: 2000,
		YahooCount: 1, KPIN: 2000, KPICount: 1, IoTN: 800}
	ds := sc.YahooSuite()[0]
	b.Run("nil", func(b *testing.B) {
		det := New(Options{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.Detect(ds.S.Values)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		det := New(Options{Obs: NewRecorder()})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.Detect(ds.S.Values)
		}
	})
}

func BenchmarkMultiExtension(b *testing.B) {
	sc := experiments.Scale{SynthN: 1200, SynthCount: 1, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}
	var rows []experiments.MultiRow
	for i := 0; i < b.N; i++ {
		rows = experiments.MultiExtension(sc)
	}
	for _, r := range rows {
		if r.Variant == "joint" {
			b.ReportMetric(100*r.APF, "joint_d"+itoa(r.Dims)+"_F_%")
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}
