package cabd

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiDetectorFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 900
	dims := make([][]float64, 2)
	for k := range dims {
		dim := make([]float64, n)
		ar := 0.0
		for i := range dim {
			ar = 0.7*ar + rng.NormFloat64()*0.1
			dim[i] = 2*math.Sin(2*math.Pi*float64(i)/130) + ar
		}
		dims[k] = dim
	}
	for k := range dims {
		dims[k][450] += 15
	}
	res := NewMulti(Options{}).Detect(dims)
	found := false
	for _, d := range res.Anomalies {
		if d.Index == 450 {
			found = true
		}
	}
	if !found {
		t.Errorf("cross-dimension spike not found: %v", res.AnomalyIndices())
	}

	calls := 0
	res = NewMulti(Options{}).DetectInteractive(dims, func(i int) Label {
		calls++
		if i == 450 {
			return SingleAnomaly
		}
		return Normal
	})
	if calls != res.Queries {
		t.Errorf("labeler calls %d != queries %d", calls, res.Queries)
	}
}

func TestStreamDetectorFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewStream(StreamConfig{Window: 500, Hop: 60})
	spike := 800
	var got []StreamDetection
	ar := 0.0
	for i := 0; i < 1400; i++ {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		v := 2*math.Sin(2*math.Pi*float64(i)/120) + ar
		if i == spike {
			v += 15
		}
		got = append(got, d.Push(v)...)
	}
	got = append(got, d.Flush()...)
	if d.Total() != 1400 {
		t.Errorf("Total = %d", d.Total())
	}
	found := false
	for _, det := range got {
		if det.Index == spike && det.Subtype.IsAnomaly() {
			found = true
		}
	}
	if !found {
		t.Errorf("streamed spike not detected: %+v", got)
	}
}

func TestRepairFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 800
	values := make([]float64, n)
	ar := 0.0
	for i := range values {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		values[i] = 10 + 2*math.Sin(2*math.Pi*float64(i)/100) + ar
	}
	truth := append([]float64(nil), values...)
	errAt := []int{200, 500}
	for _, p := range errAt {
		values[p] += 20
	}
	known := map[int]float64{}
	det := New(Options{})
	res := det.DetectInteractive(values, func(i int) Label {
		known[i] = truth[i]
		for _, p := range errAt {
			if i == p {
				return SingleAnomaly
			}
		}
		return Normal
	})
	repaired := Repair(values, res, known, RepairOptions{})
	for _, p := range errAt {
		if math.Abs(repaired[p]-truth[p]) >= math.Abs(values[p]-truth[p]) {
			t.Errorf("error at %d not repaired: %v -> %v (truth %v)",
				p, values[p], repaired[p], truth[p])
		}
	}
	if values[200] == repaired[200] && values[500] == repaired[500] {
		t.Error("repair was a no-op")
	}
	// The input must be untouched.
	if values[200] == truth[200] {
		t.Error("Repair mutated its input")
	}
}

func TestRepairSpeedConstrainedFacade(t *testing.T) {
	values := []float64{0, 0.2, 9, 0.6, 0.8}
	out := RepairSpeedConstrained(values, 1, -1)
	for i := 1; i < len(out); i++ {
		if d := out[i] - out[i-1]; d > 1+1e-9 || d < -1-1e-9 {
			t.Errorf("speed violated at %d: %v", i, d)
		}
	}
}

func TestDetectBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(spike int) []float64 {
		vals := make([]float64, 600)
		ar := 0.0
		for i := range vals {
			ar = 0.7*ar + rng.NormFloat64()*0.1
			vals[i] = 2*math.Sin(2*math.Pi*float64(i)/90) + ar
		}
		vals[spike] += 15
		return vals
	}
	set := [][]float64{mk(100), mk(250), mk(400), mk(550), mk(300)}
	det := New(Options{})
	batch := det.DetectBatch(set)
	if len(batch) != len(set) {
		t.Fatalf("batch size = %d", len(batch))
	}
	for i, vals := range set {
		seq := det.Detect(vals)
		bi, si := batch[i].AnomalyIndices(), seq.AnomalyIndices()
		if len(bi) != len(si) {
			t.Fatalf("series %d: batch %v vs sequential %v", i, bi, si)
		}
		for j := range bi {
			if bi[j] != si[j] {
				t.Fatalf("series %d: batch diverges from sequential", i)
			}
		}
	}
}

func TestDetectBatchEmpty(t *testing.T) {
	if got := New(Options{}).DetectBatch(nil); len(got) != 0 {
		t.Errorf("empty batch = %v", got)
	}
}
