GO ?= go

.PHONY: all build vet lint lint-bench test race check cover fuzz bench bench-guard serve-smoke agent-smoke stream-smoke scenario-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The repo's own static analysis: cabd-lint enforces the determinism,
# panic-isolation, clock-injection, lock-balance, cancel-leak, goroutine-
# leak, and hot-path-allocation invariants (see DESIGN.md). A reintroduced
# time.Now() or a leaked Lock in library code fails this target. The
# driver lints GOMAXPROCS packages concurrently by default; output is
# byte-identical at any -parallel width.
lint:
	$(GO) run ./cmd/cabd-lint ./...

# Smoke benchmark of the linter itself: one timed full-tree lint, so a
# rule that regresses the edit-lint loop (an analyzer gone quadratic, a
# CFG blowup) is visible in CI logs before anyone feels it locally.
lint-bench:
	@start=$$(date +%s%N); \
	$(GO) run ./cmd/cabd-lint ./... || exit $$?; \
	end=$$(date +%s%N); \
	printf 'lint-bench: full-tree cabd-lint took %d ms\n' $$(( (end - start) / 1000000 ))

# Race-enabled run of the full suite, including the fault-injection
# harness (internal/faultgen) — the robustness gate.
race:
	$(GO) test -race ./...

# End-to-end smoke of the serving binary: boot cabd-serve on an
# ephemeral port, run a detect request, scrape /metrics, and verify the
# SIGTERM drain exits cleanly.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the collector: cabd-serve + cabd-agent connected
# through cabd-faultproxy — forwarding, SIGHUP hot reload, a 503 fault
# window (spill + replay, zero loss), and the SIGTERM drain.
agent-smoke:
	./scripts/agent_smoke.sh

# Smoke-scale run of the streaming benchmark: the incremental engine
# must emit detections bit-identical to the full-rerun oracle at every
# window size (the experiment exits non-zero on divergence).
stream-smoke:
	$(GO) run ./cmd/cabd-bench -exp stream -streamjson BENCH_stream.json

# Smoke-scale run of the fault-taxonomy benchmark: every fault kind at
# both channel counts on a short flat carrier. Proves the scenario
# subsystem, the joint multivariate detector and every baseline still
# drive end to end, and that the multivariate pass stays bit-identical
# to the sequential row-major oracle (the experiment exits non-zero on
# divergence). -scenjson '' keeps the checked-in full-grid
# BENCH_scenarios.json intact.
scenario-smoke:
	$(GO) run ./cmd/cabd-bench -exp scenarios -smoke -scenjson ''

check: vet build lint race serve-smoke agent-smoke stream-smoke scenario-smoke

# Coverage floor for the observability layer: pure bookkeeping code with a
# deterministic fake clock has no excuse for untested branches.
OBS_COVER_FLOOR := 90
# Coverage floor for the lint engine (the analyzers plus the cfg and
# dataflow packages backing the path-sensitive rules): an analyzer whose
# branches go untested silently stops enforcing its invariant.
LINT_COVER_FLOOR := 85
# Coverage floor for the forest: the classifier's batch/parallel fast
# paths are promised bit-identical to their sequential oracles, and an
# untested branch there is an unverified promise.
FOREST_COVER_FLOOR := 85
# Coverage floor for the multivariate detector: its parallel scoring,
# degradation and collective-merge paths all promise oracle equality,
# so untested branches there are unverified promises too.
MULTI_COVER_FLOOR := 85
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(OBS_COVER_FLOOR)) { \
			printf "internal/obs coverage %s%% is below the $(OBS_COVER_FLOOR)%% floor\n", $$3; exit 1 \
		} \
		printf "internal/obs coverage %s%% (floor $(OBS_COVER_FLOOR)%%)\n", $$3 }'
	$(GO) test -coverprofile=cover-lint.out ./internal/lint/...
	@$(GO) tool cover -func=cover-lint.out | awk '/^total:/ { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(LINT_COVER_FLOOR)) { \
			printf "internal/lint coverage %s%% is below the $(LINT_COVER_FLOOR)%% floor\n", $$3; exit 1 \
		} \
		printf "internal/lint coverage %s%% (floor $(LINT_COVER_FLOOR)%%)\n", $$3 }'
	$(GO) test -coverprofile=cover-forest.out ./internal/ml/forest
	@$(GO) tool cover -func=cover-forest.out | awk '/^total:/ { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(FOREST_COVER_FLOOR)) { \
			printf "internal/ml/forest coverage %s%% is below the $(FOREST_COVER_FLOOR)%% floor\n", $$3; exit 1 \
		} \
		printf "internal/ml/forest coverage %s%% (floor $(FOREST_COVER_FLOOR)%%)\n", $$3 }'
	$(GO) test -coverprofile=cover-multi.out ./internal/multi
	@$(GO) tool cover -func=cover-multi.out | awk '/^total:/ { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(MULTI_COVER_FLOOR)) { \
			printf "internal/multi coverage %s%% is below the $(MULTI_COVER_FLOOR)%% floor\n", $$3; exit 1 \
		} \
		printf "internal/multi coverage %s%% (floor $(MULTI_COVER_FLOOR)%%)\n", $$3 }'

# Short native fuzzing campaigns against the sanitizing entry points.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDetect -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzStreamPush -fuzztime 30s .

# Raw-speed regression gate: run the scale sweep (optimized pass vs the
# sequential row-major oracle), then hold its speedup rows to the
# checked-in per-core tolerances. Exits non-zero on any detection
# divergence or a >20% speedup regression.
bench-guard:
	$(GO) run ./cmd/cabd-bench -exp scale -json BENCH_runtime.json
	$(GO) run ./cmd/cabd-benchguard -json BENCH_runtime.json -tol scripts/bench_tolerances.json

# -run '^$$' keeps the unit-test suite out of benchmark runs (without it
# every `make bench` pays the full test suite first).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Quick old-vs-new smoke of the INN probe engine (legacy vs rank).
bench-inn:
	$(GO) test -run '^$$' -bench 'BenchmarkINN' -benchmem .
