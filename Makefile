GO ?= go

.PHONY: all build vet test race check cover fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite, including the fault-injection
# harness (internal/faultgen) — the robustness gate.
race:
	$(GO) test -race ./...

check: vet build race

# Coverage floor for the observability layer: pure bookkeeping code with a
# deterministic fake clock has no excuse for untested branches.
OBS_COVER_FLOOR := 90
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(OBS_COVER_FLOOR)) { \
			printf "internal/obs coverage %s%% is below the $(OBS_COVER_FLOOR)%% floor\n", $$3; exit 1 \
		} \
		printf "internal/obs coverage %s%% (floor $(OBS_COVER_FLOOR)%%)\n", $$3 }'

# Short native fuzzing campaigns against the sanitizing entry points.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDetect -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzStreamPush -fuzztime 30s .

# -run '^$$' keeps the unit-test suite out of benchmark runs (without it
# every `make bench` pays the full test suite first).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Quick old-vs-new smoke of the INN probe engine (legacy vs rank).
bench-inn:
	$(GO) test -run '^$$' -bench 'BenchmarkINN' -benchmem .
