GO ?= go

.PHONY: all build vet test race check fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite, including the fault-injection
# harness (internal/faultgen) — the robustness gate.
race:
	$(GO) test -race ./...

check: vet build race

# Short native fuzzing campaigns against the sanitizing entry points.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDetect -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzStreamPush -fuzztime 30s .

bench:
	$(GO) test -bench=. -benchmem
