GO ?= go

.PHONY: all build vet test race check fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite, including the fault-injection
# harness (internal/faultgen) — the robustness gate.
race:
	$(GO) test -race ./...

check: vet build race

# Short native fuzzing campaigns against the sanitizing entry points.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDetect -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzStreamPush -fuzztime 30s .

# -run '^$$' keeps the unit-test suite out of benchmark runs (without it
# every `make bench` pays the full test suite first).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Quick old-vs-new smoke of the INN probe engine (legacy vs rank).
bench-inn:
	$(GO) test -run '^$$' -bench 'BenchmarkINN' -benchmem .
