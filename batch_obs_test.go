package cabd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cabd/internal/obs"
)

// seq forces the batch pool down to a single worker so a step-advancing
// FakeClock sees strictly sequential spans (concurrent spans would steal
// each other's auto-advance steps and make durations nondeterministic).
func seq(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestBatchDetectPanicIsolation pins the per-item recover contract of the
// batch pool: a panicking item fills its own slot with an empty Result and
// a *PanicError carrying its index, neighbors stay untouched, and — via
// the deferred span bookkeeping — the recorder still sees the item's wall
// time and failure counters.
func TestBatchDetectPanicIsolation(t *testing.T) {
	seq(t)
	clk := obs.NewFakeClock(time.Time{})
	clk.SetStep(time.Millisecond)
	rec := obs.NewWithClock(clk)

	out, errs := batchDetect(context.Background(), rec, 5,
		func(ctx context.Context, i int) (*Result, error) {
			if i == 2 {
				panic("boom")
			}
			return &Result{Queries: i}, nil
		})

	if len(out) != 5 || len(errs) != 5 {
		t.Fatalf("lengths = %d/%d, want 5/5", len(out), len(errs))
	}
	for i := range out {
		if out[i] == nil {
			t.Fatalf("nil hole at results[%d]", i)
		}
		if i == 2 {
			continue
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
		if out[i].Queries != i {
			t.Errorf("results[%d] clobbered: %+v", i, out[i])
		}
	}
	var pe *PanicError
	if !errors.As(errs[2], &pe) {
		t.Fatalf("errs[2] = %v (%T), want *PanicError", errs[2], errs[2])
	}
	if pe.Series != 2 || fmt.Sprint(pe.Value) != "boom" {
		t.Errorf("PanicError = series %d value %v, want series 2 value boom", pe.Series, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}

	// Span bookkeeping ran on every exit path: one 1ms span per item,
	// including the panicked one.
	if got := rec.StageCount(obs.StageBatchSeries); got != 5 {
		t.Errorf("batch_series span count = %d, want 5", got)
	}
	if got := rec.StageTotal(obs.StageBatchSeries); got != 5*time.Millisecond {
		t.Errorf("batch_series total = %v, want 5ms", got)
	}
	if got := rec.GaugeValue(obs.GaugeBatchInFlight); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
	if got := rec.Count(obs.CounterBatchSeries); got != 5 {
		t.Errorf("batch_series_total = %d, want 5", got)
	}
	if got := rec.Count(obs.CounterBatchFailures); got != 1 {
		t.Errorf("batch_failures_total = %d, want 1", got)
	}
	if got := rec.Count(obs.CounterPanicsContained); got != 1 {
		t.Errorf("panics_contained_total = %d, want 1", got)
	}
}

// TestBatchDetectCancelledContext verifies the regression fixed alongside
// the observability work: a context cancelled before (or during) the batch
// leaves no nil holes in either slice — every unfinished series carries
// ctx.Err() and an empty Result, and its span is still recorded.
func TestBatchDetectCancelledContext(t *testing.T) {
	seq(t)
	clk := obs.NewFakeClock(time.Time{})
	clk.SetStep(time.Millisecond)
	rec := obs.NewWithClock(clk)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs := batchDetect(ctx, rec, 4,
		func(ctx context.Context, i int) (*Result, error) {
			t.Errorf("item %d ran despite cancelled context", i)
			return nil, nil
		})
	for i := range out {
		if out[i] == nil {
			t.Fatalf("nil hole at results[%d]", i)
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, errs[i])
		}
	}
	if got := rec.StageCount(obs.StageBatchSeries); got != 4 {
		t.Errorf("span count = %d, want 4 (cancelled items still timed)", got)
	}
	if got := rec.Count(obs.CounterBatchFailures); got != 4 {
		t.Errorf("batch_failures_total = %d, want 4", got)
	}
	if got := rec.Count(obs.CounterPanicsContained); got != 0 {
		t.Errorf("panics_contained_total = %d, want 0", got)
	}
}

// TestBatchDetectErrorNoHoles drives an error-returning (non-panicking)
// item and a nil-Result success through the pool: errors surface in place,
// a nil Result from the callback is replaced by an empty one, and failure
// counters see exactly the failing items.
func TestBatchDetectErrorNoHoles(t *testing.T) {
	seq(t)
	rec := obs.New()
	sentinel := errors.New("rejected")
	out, errs := batchDetect(context.Background(), rec, 3,
		func(ctx context.Context, i int) (*Result, error) {
			switch i {
			case 0:
				return nil, sentinel
			case 1:
				return nil, nil // nil Result on success must not become a hole
			default:
				return &Result{Queries: 7}, nil
			}
		})
	if !errors.Is(errs[0], sentinel) || errs[1] != nil || errs[2] != nil {
		t.Errorf("errs = %v, want [sentinel nil nil]", errs)
	}
	for i := range out {
		if out[i] == nil {
			t.Fatalf("nil hole at results[%d]", i)
		}
	}
	if out[2].Queries != 7 {
		t.Errorf("successful result clobbered: %+v", out[2])
	}
	if got := rec.Count(obs.CounterBatchFailures); got != 1 {
		t.Errorf("batch_failures_total = %d, want 1", got)
	}
}

// TestDetectBatchCtxPanicSeriesIndex runs the exported API end to end with
// one hostile series (sanitize-rejected) among healthy ones and checks the
// alignment contract on the public surface.
func TestDetectBatchCtxPanicSeriesIndex(t *testing.T) {
	healthy := make([]float64, 400)
	for i := range healthy {
		healthy[i] = float64(i % 17)
	}
	rec := NewRecorder()
	det := New(Options{Seed: 1, Obs: rec})
	out, errs := det.DetectBatchCtx(context.Background(), [][]float64{
		healthy,
		nil, // rejected by sanitization
		healthy,
	})
	if len(out) != 3 || len(errs) != 3 {
		t.Fatalf("lengths = %d/%d", len(out), len(errs))
	}
	for i, r := range out {
		if r == nil {
			t.Fatalf("nil hole at results[%d]", i)
		}
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy series failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("empty series produced no error")
	}
	if got := rec.Count(obs.CounterBatchSeries); got != 3 {
		t.Errorf("batch_series_total = %d, want 3", got)
	}
	if got := rec.Count(obs.CounterBatchFailures); got != 1 {
		t.Errorf("batch_failures_total = %d, want 1", got)
	}
}
