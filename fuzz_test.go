package cabd

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// bytesToFloats reinterprets fuzz input as a float64 series: every 8-byte
// chunk is one IEEE-754 value, bit patterns included — NaNs, infinities,
// denormals and garbage exponents all come out of the fuzzer this way.
// Length is capped so the fuzzer explores values, not runtime.
func bytesToFloats(data []byte, maxLen int) []float64 {
	n := len(data) / 8
	if n > maxLen {
		n = maxLen
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// checkSorted asserts the detection-output contract on fuzz runs.
func checkSorted(t *testing.T, who string, idx []int, n int) {
	t.Helper()
	if !sort.IntsAreSorted(idx) {
		t.Fatalf("%s: indices not sorted: %v", who, idx)
	}
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Fatalf("%s: index %d out of range [0, %d)", who, i, n)
		}
	}
}

// FuzzDetect throws arbitrary bit patterns at the sanitizing Detect entry
// point. The contract under fuzzing: no panic ever escapes, and any
// detections point at valid, sorted positions of the caller's input.
func FuzzDetect(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	seed := make([]byte, 0, 64*8)
	var buf [8]byte
	for i := 0; i < 64; i++ {
		v := math.Sin(float64(i) / 3)
		if i == 20 {
			v = math.NaN()
		}
		if i == 40 {
			v = math.Inf(1)
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)

	det := New(Options{})
	f.Fuzz(func(t *testing.T, data []byte) {
		values := bytesToFloats(data, 256)
		res := det.Detect(values)
		if res == nil {
			t.Fatal("Detect returned nil result")
		}
		checkSorted(t, "anomalies", res.AnomalyIndices(), len(values))
		checkSorted(t, "changepoints", res.ChangePointIndices(), len(values))
	})
}

// FuzzStreamPush feeds arbitrary bit patterns into the streaming
// detector one observation at a time: Push must intercept every bad
// value, never panic, and only emit detections for positions already
// pushed.
func FuzzStreamPush(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		values := bytesToFloats(data, 512)
		d := NewStream(StreamConfig{Window: 64, Hop: 16})
		pushed := 0
		emit := func(dets []StreamDetection) {
			for _, det := range dets {
				if det.Index < 0 || det.Index >= pushed {
					t.Fatalf("stream detection index %d outside pushed range [0, %d)",
						det.Index, pushed)
				}
			}
		}
		for _, v := range values {
			dets := d.Push(v)
			pushed = d.Total()
			emit(dets)
		}
		emit(d.Flush())
		if d.Total()+d.Bad() < len(values) {
			t.Fatalf("accounting hole: %d accepted + %d bad < %d pushed",
				d.Total(), d.Bad(), len(values))
		}
	})
}
