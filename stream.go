package cabd

import (
	"time"

	"cabd/internal/stream"
)

// StreamEngine selects the per-hop analysis engine of a StreamDetector.
type StreamEngine int

const (
	// StreamEngineIncremental (the default) maintains rolling pipeline
	// state across window slides — per-hop cost scales with the points
	// that arrived or expired, not the window length.
	StreamEngineIncremental StreamEngine = StreamEngine(stream.EngineIncremental)
	// StreamEngineFull reruns the batch pipeline over the whole window
	// every hop; it is the differential oracle for the incremental
	// engine and emits bit-identical detections.
	StreamEngineFull StreamEngine = StreamEngine(stream.EngineFull)
)

// StreamConfig parameterizes a streaming detector.
type StreamConfig struct {
	// Window is the sliding analysis window length (default 1024).
	Window int
	// Hop is how many new observations trigger a re-analysis (default
	// Window/8). Detection latency is bounded by Hop + Margin.
	Hop int
	// Margin is the trailing uncertainty zone: the freshest points wait
	// one more hop before their detections are emitted (default 16).
	Margin int
	// BadValue selects how Push treats NaN, ±Inf and out-of-range
	// observations: SanitizeInterpolate (default) imputes the last good
	// value so the analysis window is never corrupted; SanitizeDrop
	// discards the observation — indices then refer to the accepted
	// substream. Bad() reports how many observations were intercepted.
	BadValue SanitizePolicy
	// Engine selects the analysis engine (default
	// StreamEngineIncremental).
	Engine StreamEngine
	// HopTimeout bounds one per-hop analysis. Zero means no bound. An
	// analysis under deadline pressure degrades to the cheaper scoring
	// strategy (emitted detections carry Degraded); one that still
	// overruns is abandoned for the hop and retried on the next.
	HopTimeout time.Duration
	// Options configures the underlying detector.
	Options Options
}

// StreamDetection is one detection emitted by a StreamDetector, carrying
// the observation's global position in the stream.
type StreamDetection struct {
	Index      int
	Subtype    Label
	Confidence float64
	// Degraded is set when the confirming analysis ran under graceful
	// degradation (candidate flood or deadline pressure).
	Degraded bool
}

// StreamDetector runs CABD online: push observations one at a time and
// collect detections as they are confirmed. Not safe for concurrent use.
type StreamDetector struct {
	inner *stream.Detector
}

// NewStream returns a streaming detector.
func NewStream(cfg StreamConfig) *StreamDetector {
	return &StreamDetector{inner: stream.New(streamConfig(cfg))}
}

func streamConfig(cfg StreamConfig) stream.Config {
	return stream.Config{
		Window:     cfg.Window,
		Hop:        cfg.Hop,
		Margin:     cfg.Margin,
		BadValue:   cfg.BadValue,
		Engine:     stream.EngineMode(cfg.Engine),
		HopTimeout: cfg.HopTimeout,
		Options:    cfg.Options,
	}
}

// StreamState is the serializable snapshot of a StreamDetector: window
// contents, global position, counters and the emitted-detection dedup
// set. It is the unit of agent checkpointing (cmd/cabd-agent) — a
// detector resumed from a state continues the stream bit-identically.
type StreamState = stream.State

// State snapshots the detector for checkpointing. The configuration is
// not part of the state; pass it again to ResumeStream.
func (d *StreamDetector) State() StreamState { return d.inner.State() }

// ResumeStream rebuilds a streaming detector from a checkpointed state
// under cfg.
func ResumeStream(cfg StreamConfig, st StreamState) *StreamDetector {
	return &StreamDetector{inner: stream.Resume(streamConfig(cfg), st)}
}

// Push appends one observation and returns any newly confirmed
// detections (usually none; at most a batch per hop). A NaN, ±Inf or
// out-of-range observation never corrupts the window — it is imputed or
// discarded per StreamConfig.BadValue.
func (d *StreamDetector) Push(v float64) []StreamDetection {
	return convertStream(d.inner.Push(v))
}

// Bad returns the number of bad (NaN/Inf/out-of-range) observations
// intercepted by Push so far.
func (d *StreamDetector) Bad() int { return d.inner.Bad() }

// Flush analyzes the final window with no trailing margin and returns the
// remaining detections. Call once at end of stream.
func (d *StreamDetector) Flush() []StreamDetection {
	return convertStream(d.inner.Flush())
}

// Total returns the number of observations pushed so far.
func (d *StreamDetector) Total() int { return d.inner.Total() }

func convertStream(dets []stream.Detection) []StreamDetection {
	out := make([]StreamDetection, 0, len(dets))
	for _, det := range dets {
		out = append(out, StreamDetection{
			Index:      det.Index,
			Subtype:    Label(det.Subtype),
			Confidence: det.Confidence,
			Degraded:   det.Degraded,
		})
	}
	return out
}
