#!/usr/bin/env bash
# serve_smoke.sh — boot cabd-serve on an ephemeral port, run one detect
# request, scrape /metrics, and check graceful shutdown on SIGTERM.
# Exercises the binary end to end the way a deployment would, in a few
# seconds. Used by `make serve-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/cabd-serve"
portfile="$workdir/port"
logfile="$workdir/serve.log"

cleanup() {
  if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building cabd-serve"
go build -o "$bin" ./cmd/cabd-serve

"$bin" -addr 127.0.0.1:0 -portfile "$portfile" >"$logfile" 2>&1 &
server_pid=$!

for _ in $(seq 1 50); do
  [[ -s "$portfile" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "serve-smoke: server died at boot"; cat "$logfile"; exit 1; }
  sleep 0.1
done
[[ -s "$portfile" ]] || { echo "serve-smoke: no portfile after 5s"; cat "$logfile"; exit 1; }
port=$(cat "$portfile")
base="http://127.0.0.1:$port"
echo "serve-smoke: serving on $base"

curl -sfS "$base/healthz" | grep -q '"ok"' || { echo "serve-smoke: healthz failed"; exit 1; }
curl -sfS "$base/readyz" | grep -q '"ready"' || { echo "serve-smoke: readyz failed"; exit 1; }

# One real detection: a flat-ish series with one obvious spike.
series=$(awk 'BEGIN{printf "["; for(i=0;i<120;i++){v=(i%7)/10.0; if(i==60)v=40; printf "%s%.1f",(i?",":""),v} printf "]"}')
detect=$(curl -sfS -X POST "$base/v1/detect" \
  -H 'Content-Type: application/json' \
  -d "{\"series\": $series}")
echo "serve-smoke: detect -> $detect"
echo "$detect" | grep -q '"strategy"' || { echo "serve-smoke: detect reply missing strategy"; exit 1; }
echo "$detect" | grep -q '"index": *60' || { echo "serve-smoke: the planted spike at 60 was not detected"; exit 1; }

metrics=$(curl -sfS "$base/metrics")
echo "$metrics" | grep -q '^cabd_http_requests_total [1-9]' \
  || { echo "serve-smoke: /metrics shows no requests"; exit 1; }
echo "$metrics" | grep -q '^cabd_queue_depth ' \
  || { echo "serve-smoke: /metrics missing queue depth gauge"; exit 1; }
echo "serve-smoke: metrics ok"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "serve-smoke: server ignored SIGTERM for 10s"; cat "$logfile"; exit 1
fi
wait "$server_pid" 2>/dev/null || rc=$?
if [[ "${rc:-0}" -ne 0 ]]; then
  echo "serve-smoke: server exited $rc after SIGTERM"; cat "$logfile"; exit 1
fi
grep -q 'drained cleanly' "$logfile" || { echo "serve-smoke: no clean-drain log line"; cat "$logfile"; exit 1; }
server_pid=""
echo "serve-smoke: graceful shutdown ok"
echo "serve-smoke: PASS"
