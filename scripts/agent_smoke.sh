#!/usr/bin/env bash
# agent_smoke.sh — boot cabd-serve and a cabd-agent connected through the
# cabd-faultproxy, and drive the collector's whole operational surface:
# detection forwarding, a SIGHUP config reload, a 503 fault window (the
# agent spills to disk, then replays once the proxy passes again), and a
# SIGTERM drain. Exercises the three binaries end to end the way a
# deployment would. Used by `make agent-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
srcdir="$workdir/src"
mkdir -p "$srcdir" "$workdir/ckpt"

cleanup() {
  for pid in "${agent_pid:-}" "${proxy_pid:-}" "${serve_pid:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# wait_for <desc> <tries> <cmd...>: poll cmd (0.1s apart) until it succeeds.
wait_for() {
  local desc=$1 tries=$2; shift 2
  for _ in $(seq 1 "$tries"); do
    "$@" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "agent-smoke: timed out waiting for $desc"
  for log in serve proxy agent; do
    [[ -f "$workdir/$log.log" ]] && { echo "--- $log.log ---"; cat "$workdir/$log.log"; }
  done
  return 1
}

echo "agent-smoke: building cabd-serve, cabd-faultproxy, cabd-agent"
go build -o "$workdir/cabd-serve" ./cmd/cabd-serve
go build -o "$workdir/cabd-faultproxy" ./cmd/cabd-faultproxy
go build -o "$workdir/cabd-agent" ./cmd/cabd-agent

"$workdir/cabd-serve" -addr 127.0.0.1:0 -portfile "$workdir/serve.port" \
  -checkpoint-dir "$workdir/ckpt" >"$workdir/serve.log" 2>&1 &
serve_pid=$!
wait_for "cabd-serve port" 50 test -s "$workdir/serve.port"
serve="http://127.0.0.1:$(cat "$workdir/serve.port")"
echo "agent-smoke: serve on $serve"

"$workdir/cabd-faultproxy" -listen 127.0.0.1:0 -portfile "$workdir/proxy.port" \
  -admin 127.0.0.1:0 -adminportfile "$workdir/admin.port" \
  -target "$serve" >"$workdir/proxy.log" 2>&1 &
proxy_pid=$!
wait_for "faultproxy ports" 50 test -s "$workdir/admin.port"
proxy="http://127.0.0.1:$(cat "$workdir/proxy.port")"
admin="http://127.0.0.1:$(cat "$workdir/admin.port")"
echo "agent-smoke: proxy on $proxy (admin $admin)"

# Config layering on the real binary: the file sets identity-free tuning,
# the environment sets the state dir, flags set server + source dir.
cat >"$workdir/agent.json" <<EOF
{
  "name": "smoke-agent",
  "poll_every": "200ms",
  "batch_size": 16,
  "window": 64,
  "hop": 8,
  "margin": 4
}
EOF
CABD_AGENT_STATE_DIR="$workdir/state" "$workdir/cabd-agent" \
  -config "$workdir/agent.json" -server "$proxy" -source-dir "$srcdir" \
  >"$workdir/agent.log" 2>&1 &
agent_pid=$!

# spike_chunk <start> <spike_index>: 120 flat-ish values with one spike.
spike_chunk() {
  awk -v s="$1" -v sp="$2" 'BEGIN{
    for (i = s; i < s + 120; i++) { v = (i % 7) / 10.0; if (i == sp) v = 40; printf "%.1f\n", v }
  }'
}

ingest_total() {
  curl -sfS "$serve/v1/ingest" | grep -Eq "\"total\":$1(,|})"
}

# Phase 1: healthy forwarding — the planted spike must arrive at serve.
spike_chunk 0 60 >>"$srcdir/cpu.csv"
wait_for "first detection ingested" 100 ingest_total 1
echo "agent-smoke: detection forwarded through the proxy"

# Phase 2: SIGHUP hot reload (same layers, applied without a restart).
kill -HUP "$agent_pid"
wait_for "reload applied" 50 grep -q "reload applied" "$workdir/agent.log"
echo "agent-smoke: SIGHUP reload ok"

# Phase 3: fault window — the proxy answers 503, the agent retries with
# backoff and spills the detection to disk instead of losing it.
curl -sfS -X POST "$admin/mode?mode=error" >/dev/null
spike_chunk 120 180 >>"$srcdir/cpu.csv"
wait_for "forwarding failure during fault window" 150 \
  grep -q "cabd-agent: forward .* detections:" "$workdir/agent.log"
if ingest_total 2; then
  echo "agent-smoke: detection leaked past the error window"; exit 1
fi

# Phase 4: the proxy heals; the spilled detection replays exactly once.
curl -sfS -X POST "$admin/mode?mode=pass" >/dev/null
wait_for "spilled detection replayed" 150 ingest_total 2
echo "agent-smoke: spill replayed after the fault window"

# Phase 5: SIGTERM drain — clean exit, checkpoint on disk.
kill -TERM "$agent_pid"
for _ in $(seq 1 100); do
  kill -0 "$agent_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$agent_pid" 2>/dev/null; then
  echo "agent-smoke: agent ignored SIGTERM for 10s"; cat "$workdir/agent.log"; exit 1
fi
wait "$agent_pid" 2>/dev/null || rc=$?
if [[ "${rc:-0}" -ne 0 ]]; then
  echo "agent-smoke: agent exited $rc after SIGTERM"; cat "$workdir/agent.log"; exit 1
fi
grep -q "drained cleanly" "$workdir/agent.log" \
  || { echo "agent-smoke: no clean-drain log line"; cat "$workdir/agent.log"; exit 1; }
test -s "$workdir/state/agent.json" \
  || { echo "agent-smoke: no agent checkpoint after drain"; exit 1; }
agent_pid=""
echo "agent-smoke: SIGTERM drain ok"

kill -TERM "$serve_pid"
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
serve_pid=""
echo "agent-smoke: PASS"
