// Command cabd detects anomalies and change points in a univariate time
// series read from a CSV file (one value per line, or the last field of
// each comma-separated row; lines starting with '#' are skipped).
//
// Usage:
//
//	cabd [flags] series.csv
//
// With -interactive the detector runs the paper's active-learning loop,
// prompting on stdin for the label of each queried point:
//
//	$ cabd -interactive readings.csv
//	point 421 (value 63.20): [a]nomaly / [c]hange / [n]ormal?
//
// Dirty input (NaN, ±Inf, absurd magnitudes) is sanitized before
// detection; -sanitize picks the policy (interpolate, drop, reject) and a
// repair summary is reported on stderr. -timeout bounds the whole run —
// under deadline pressure the detector degrades to its fast KNN scoring
// strategy rather than dying.
//
// Output is one line per detection: index, kind, subtype, confidence.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cabd"
	"cabd/internal/dataio"
)

func main() {
	interactive := flag.Bool("interactive", false, "run active learning, prompting for labels on stdin")
	multiCol := flag.Bool("multi", false, "treat every numeric column as one dimension of a multivariate series")
	confidence := flag.Float64("confidence", 0.8, "required detection confidence (γ)")
	maxQueries := flag.Int("max-queries", 50, "label budget for -interactive")
	rangeFrac := flag.Float64("range", 0.05, "INN search-range prune as a fraction of the series")
	sanitizeFlag := flag.String("sanitize", "interpolate", "bad-value policy: interpolate, drop or reject")
	timeout := flag.Duration("timeout", 0, "overall deadline (e.g. 30s); 0 means none")
	metrics := flag.Bool("metrics", false, "print pipeline metrics (stage timings + Prometheus text) on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cabd [flags] series.csv\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	policy, err := cabd.ParseSanitizePolicy(*sanitizeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabd: %v\n", err)
		os.Exit(2)
	}
	opts := cabd.Options{
		Confidence: *confidence,
		MaxQueries: *maxQueries,
		RangeFrac:  *rangeFrac,
		Sanitize:   policy,
	}
	var rec *cabd.Recorder
	if *metrics {
		rec = cabd.NewRecorder()
		opts.Obs = rec
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res *cabd.Result
	if *multiCol {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd: %v\n", err)
			os.Exit(1)
		}
		dims, err := dataio.ReadMulti(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd: %s: %v\n", flag.Arg(0), err)
			os.Exit(1)
		}
		det := cabd.NewMulti(opts)
		if *interactive {
			stdin := bufio.NewReader(os.Stdin)
			res, err = det.DetectInteractiveCtx(ctx, dims, func(i int) cabd.Label {
				return prompt(stdin, i, dims[0][i])
			})
			if err == nil {
				fmt.Printf("# %d labels provided\n", res.Queries)
			}
		} else {
			res, err = det.DetectCtx(ctx, dims)
		}
		if err != nil {
			fail(res, err)
		}
	} else {
		values, err := dataio.ReadValuesFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd: %v\n", err)
			os.Exit(1)
		}
		det := cabd.New(opts)
		if *interactive {
			stdin := bufio.NewReader(os.Stdin)
			res, err = det.DetectInteractiveCtx(ctx, values, func(i int) cabd.Label {
				return prompt(stdin, i, values[i])
			})
			if err == nil {
				fmt.Printf("# %d labels provided\n", res.Queries)
			}
		} else {
			res, err = det.DetectCtx(ctx, values)
		}
		if err != nil {
			fail(res, err)
		}
	}
	report(res)
	for _, d := range res.Anomalies {
		fmt.Printf("%d\tanomaly\t%s\t%.2f\n", d.Index, d.Subtype, d.Confidence)
	}
	for _, d := range res.ChangePoints {
		fmt.Printf("%d\tchange\t%s\t%.2f\n", d.Index, d.Subtype, d.Confidence)
	}
	if rec != nil {
		for stage, secs := range res.Stages.Seconds() {
			fmt.Fprintf(os.Stderr, "# stage %s: %.6fs\n", stage, secs)
		}
		rec.WritePrometheus(os.Stderr)
	}
}

// report surfaces sanitization repairs and degradation on stderr, so
// piping detections to a file still shows what happened to the input.
func report(res *cabd.Result) {
	if rep := res.Sanitize; rep != nil && rep.Bad() > 0 {
		fmt.Fprintf(os.Stderr, "# sanitize: %s\n", rep)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "# degraded to %s scoring: %s\n", res.Strategy, res.DegradeReason)
	}
}

// fail reports a detection error, including any sanitize context attached
// to the partial result, and exits.
func fail(res *cabd.Result, err error) {
	if res != nil && res.Sanitize != nil {
		fmt.Fprintf(os.Stderr, "# sanitize: %s\n", res.Sanitize)
	}
	fmt.Fprintf(os.Stderr, "cabd: %v\n", err)
	os.Exit(1)
}

func prompt(r *bufio.Reader, i int, v float64) cabd.Label {
	for {
		fmt.Fprintf(os.Stderr, "point %d (value %.4g): [a]nomaly / [c]hange / [n]ormal? ", i, v)
		line, err := r.ReadString('\n')
		if err != nil {
			return cabd.Normal
		}
		switch strings.ToLower(strings.TrimSpace(line)) {
		case "a", "anomaly":
			return cabd.SingleAnomaly
		case "c", "change":
			return cabd.ChangePoint
		case "n", "normal", "":
			return cabd.Normal
		}
	}
}
