// Command cabd-lint runs the repo's invariant analyzers (wallclock,
// maporder, seededrand, floateq, recoverwrap, ctxdiscipline, httpbody)
// over the module and exits non-zero on any finding. See internal/lint.
package main

import (
	"os"

	"cabd/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
