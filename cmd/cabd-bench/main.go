// Command cabd-bench regenerates the paper's tables and figures
// (Section V). Each experiment prints the same rows/series the paper
// reports; DESIGN.md maps experiment ids to the modules involved and
// EXPERIMENTS.md records measured-versus-paper numbers.
//
//	cabd-bench -exp table1            # one experiment
//	cabd-bench -exp all               # everything
//	cabd-bench -exp fig11 -full       # paper-scale datasets (slow)
//
// Experiment ids: fig1 fig3 table1 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// scale table2 fig12 fig13 fig14 multi chaos inn obs scenarios serve
// stream load.
//
// The scenarios experiment sweeps the fault-taxonomy grid (fault kind x
// series family x channel count x severity) with CABD's joint
// multivariate detector against every univariate baseline (run
// per-channel, detections unioned), writes -scenjson (default
// BENCH_scenarios.json), replays every cell against the sequential
// row-major oracle, and fails the run on any detection divergence.
// -smoke shrinks it to the CI grid; -full widens to every family.
//
// The runtime experiments (fig11, inn, obs, scale) additionally write
// their rows to a machine-readable snapshot (-json, default
// BENCH_runtime.json; empty string disables). The scale experiment
// sweeps the optimized detection pass (SoA features, parallel forest
// training, tree-major batch inference) against the sequential
// row-major oracle across series length x GOMAXPROCS x candidate
// threshold, fails the run on any detection divergence, and feeds
// scripts/bench_guard (make bench-guard). With -metrics the obs experiment also merges its
// recorder snapshot — counters, degrade reasons, stage histograms — into
// the JSON. The serve experiment benchmarks the HTTP serving layer
// (throughput/latency quantiles, saturation shedding, one auto-labeled
// session) and writes -servejson (default BENCH_serve.json). The load
// experiment drives a collector fleet (N cabd-agents x M streams) through
// a mid-run server crash/restart, verifies zero detection loss, probes
// the shed point, and writes -loadjson (default BENCH_load.json). The
// stream experiment benchmarks the streaming path (incremental vs
// full-rerun engine cost and detection equality, many-stream memory
// bounds, the sharded registry over HTTP) and writes -streamjson
// (default BENCH_stream.json); a detection divergence between the two
// engines fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cabd/internal/experiments"
	"cabd/internal/experiments/loadbench"
	"cabd/internal/experiments/servebench"
	"cabd/internal/experiments/streambench"
)

type runner struct {
	id   string
	desc string
	run  func(sc experiments.Scale)
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	full := flag.Bool("full", false, "paper-scale datasets (slow: tens of minutes)")
	list := flag.Bool("list", false, "list experiment ids")
	jsonPath := flag.String("json", "BENCH_runtime.json",
		"runtime snapshot output for fig11/inn/obs ('' disables)")
	metrics := flag.Bool("metrics", false,
		"merge the obs recorder snapshot (counters, histograms) of the obs experiment into the runtime JSON")
	serveJSON := flag.String("servejson", "BENCH_serve.json",
		"serving benchmark output for the serve experiment ('' disables)")
	loadJSON := flag.String("loadjson", "BENCH_load.json",
		"collector-fleet benchmark output for the load experiment ('' disables)")
	streamJSON := flag.String("streamjson", "BENCH_stream.json",
		"streaming benchmark output for the stream experiment ('' disables)")
	scenJSON := flag.String("scenjson", "BENCH_scenarios.json",
		"taxonomy-grid benchmark output for the scenarios experiment ('' disables)")
	smoke := flag.Bool("smoke", false,
		"scenarios experiment only: CI smoke grid (one family, mild severity, short series)")
	flag.Parse()

	sc := experiments.Scale{}
	if *full {
		sc = experiments.Full()
	}
	out := os.Stdout
	var snap experiments.RuntimeSnapshot

	runners := []runner{
		{"fig1", "IoT example: error detection vs event preservation", func(sc experiments.Scale) {
			experiments.PrintFig1(out, experiments.Fig1(sc))
		}},
		{"fig3", "GMM clustering of candidate scores", func(sc experiments.Scale) {
			experiments.PrintFig3(out, experiments.Fig3(sc))
		}},
		{"table1", "CABD quality with and without active learning", func(sc experiments.Scale) {
			experiments.PrintTable1(out, experiments.Table1(sc))
		}},
		{"fig5", "BNF vs anomaly and change-point density", func(sc experiments.Scale) {
			experiments.PrintFig5(out, experiments.Fig5(sc))
		}},
		{"fig6", "quality and queries vs required confidence", func(sc experiments.Scale) {
			experiments.PrintFig6(out, experiments.Fig6(sc))
		}},
		{"fig7", "vs unsupervised anomaly baselines", func(sc experiments.Scale) {
			experiments.PrintCompare(out, "Figure 7: unsupervised anomaly detection", experiments.Fig7(sc))
		}},
		{"fig8", "vs supervised anomaly baselines", func(sc experiments.Scale) {
			experiments.PrintCompare(out, "Figure 8: supervised anomaly detection", experiments.Fig8(sc))
		}},
		{"fig9", "vs change-point baselines", func(sc experiments.Scale) {
			experiments.PrintFig9(out, experiments.Fig9(sc))
		}},
		{"fig10", "vs combined HBOS+PELT baseline", func(sc experiments.Scale) {
			experiments.PrintFig10(out, experiments.Fig10(sc))
		}},
		{"fig11", "runtime vs data size", func(sc experiments.Scale) {
			sizes := []int{2000, 5000}
			if *full {
				sizes = experiments.Fig11Sizes
			}
			snap.Fig11 = experiments.Fig11(sizes)
			experiments.PrintFig11(out, snap.Fig11)
		}},
		{"inn", "INN probe engines: legacy k-NN probes vs rank queries", func(sc experiments.Scale) {
			sizes := []int{2000, 5000}
			if *full {
				sizes = experiments.Fig11Sizes
			}
			snap.INN = experiments.INNEngines(sizes)
			experiments.PrintINNEngines(out, snap.INN)
		}},
		{"obs", "pipeline stage profile from the observability recorder", func(sc experiments.Scale) {
			sizes := []int{2000, 5000}
			if *full {
				sizes = experiments.Fig11Sizes
			}
			rows, osnap := experiments.StageProfile(sizes)
			snap.Stages = rows
			if *metrics {
				snap.Obs = osnap
			}
			experiments.PrintStageProfile(out, rows)
		}},
		{"scale", "raw-speed scaling: optimized pass vs sequential oracle", func(sc experiments.Scale) {
			sizes := []int{2000}
			if *full {
				sizes = []int{2000, 5000, 10000}
			}
			snap.Scale = experiments.ScaleSweep(sizes, nil, nil)
			experiments.PrintScale(out, snap.Scale)
			for _, p := range snap.Scale {
				if !p.Equal {
					fmt.Fprintf(os.Stderr,
						"cabd-bench: scale experiment: n=%d procs=%d cand_z=%.1f detections DIVERGED from the sequential oracle\n",
						p.N, p.Procs, p.CandZ)
					os.Exit(1)
				}
			}
		}},
		{"table2", "active-learning accuracy/confidence trace", func(sc experiments.Scale) {
			experiments.PrintTable2(out, experiments.Table2(sc))
		}},
		{"fig12", "INN vs KNN neighborhoods", func(sc experiments.Scale) {
			experiments.PrintFig12(out, experiments.Fig12(sc))
		}},
		{"fig13", "single-score ablation", func(sc experiments.Scale) {
			experiments.PrintFig13(out, experiments.Fig13(sc))
		}},
		{"fig14", "IMR repair with and without CABD", func(sc experiments.Scale) {
			experiments.PrintFig14(out, experiments.Fig14(sc))
		}},
		{"multi", "extension: joint multivariate vs per-dimension union", func(sc experiments.Scale) {
			experiments.PrintMultiExtension(out, experiments.MultiExtension(sc))
		}},
		{"chaos", "robustness: fault injection across families and datasets", func(sc experiments.Scale) {
			experiments.PrintChaos(out, experiments.Chaos(sc))
		}},
		{"scenarios", "fault-taxonomy grid: CABD vs every baseline across kind x family x channels x severity", func(sc experiments.Scale) {
			cfg := experiments.ScenarioConfig{}
			if *smoke {
				cfg = experiments.ScenarioSmokeConfig()
			} else if *full {
				cfg = experiments.ScenarioFullConfig()
			}
			res := experiments.ScenarioBench(cfg)
			experiments.PrintScenarios(out, res)
			if *scenJSON != "" {
				if err := experiments.WriteScenariosJSON(*scenJSON, res); err != nil {
					fmt.Fprintf(os.Stderr, "cabd-bench: writing %s: %v\n", *scenJSON, err)
					os.Exit(1)
				}
				fmt.Fprintf(out, "taxonomy benchmark written to %s\n", *scenJSON)
			}
			if len(res.OracleDivergences) > 0 {
				fmt.Fprintf(os.Stderr,
					"cabd-bench: scenarios experiment: multivariate detections DIVERGED from the sequential oracle in %d cells: %v\n",
					len(res.OracleDivergences), res.OracleDivergences)
				os.Exit(1)
			}
		}},
		{"serve", "HTTP serving layer: throughput, saturation shedding, session e2e", func(sc experiments.Scale) {
			cfg := servebench.ServeConfig{}
			if *full {
				cfg = servebench.ServeConfig{Requests: 256, Concurrency: 16, N: 2000}
			}
			res := servebench.ServeBench(cfg)
			servebench.PrintServe(out, res)
			if *serveJSON != "" {
				if err := servebench.WriteServeJSON(*serveJSON, res); err != nil {
					fmt.Fprintf(os.Stderr, "cabd-bench: writing %s: %v\n", *serveJSON, err)
					os.Exit(1)
				}
				fmt.Fprintf(out, "serving benchmark written to %s\n", *serveJSON)
			}
		}},
		{"stream", "streaming path: incremental vs full-rerun cost, many-stream scale, sharded registry", func(sc experiments.Scale) {
			cfg := streambench.StreamBenchConfig{}
			if *full {
				cfg = streambench.StreamBenchConfig{
					Windows:   []int{64, 128, 256, 512},
					HopsPer:   16,
					Streams:   100000,
					PerStream: 96,
					Registry:  2048,
					Conc:      32,
				}
			}
			res := streambench.StreamBench(cfg)
			streambench.PrintStream(out, res)
			for _, c := range res.Cost {
				if !c.Equal {
					fmt.Fprintf(os.Stderr, "cabd-bench: stream experiment: window %d incremental/full detections DIVERGED\n", c.Window)
					os.Exit(1)
				}
			}
			if *streamJSON != "" {
				if err := streambench.WriteStreamJSON(*streamJSON, res); err != nil {
					fmt.Fprintf(os.Stderr, "cabd-bench: writing %s: %v\n", *streamJSON, err)
					os.Exit(1)
				}
				fmt.Fprintf(out, "streaming benchmark written to %s\n", *streamJSON)
			}
		}},
		{"load", "collector fleet: N agents x M streams, shed point, zero-loss restart", func(sc experiments.Scale) {
			cfg := loadbench.LoadConfig{}
			if *full {
				cfg = loadbench.LoadConfig{Agents: 8, Streams: 6, Values: 3000, RampMax: 64}
			}
			res, err := loadbench.LoadBench(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cabd-bench: load experiment: %v\n", err)
				os.Exit(1)
			}
			loadbench.PrintLoad(out, res)
			if !res.ZeroLoss {
				fmt.Fprintf(os.Stderr, "cabd-bench: load experiment LOST %d detections\n", res.Lost)
				os.Exit(1)
			}
			if *loadJSON != "" {
				if err := loadbench.WriteLoadJSON(*loadJSON, res); err != nil {
					fmt.Fprintf(os.Stderr, "cabd-bench: writing %s: %v\n", *loadJSON, err)
					os.Exit(1)
				}
				fmt.Fprintf(out, "load benchmark written to %s\n", *loadJSON)
			}
		}},
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-8s %s\n", r.id, r.desc)
		}
		return
	}

	ids := map[string]runner{}
	var order []string
	for _, r := range runners {
		ids[r.id] = r
		order = append(order, r.id)
	}
	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := ids[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "cabd-bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	sort.SliceStable(selected, func(a, b int) bool {
		return indexOf(order, selected[a]) < indexOf(order, selected[b])
	})
	for _, id := range selected {
		r := ids[id]
		start := time.Now()
		r.run(sc)
		fmt.Fprintf(out, "  [%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	if *jsonPath != "" && !snap.Empty() {
		if err := experiments.WriteRuntimeJSON(*jsonPath, snap); err != nil {
			fmt.Fprintf(os.Stderr, "cabd-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "runtime snapshot written to %s\n", *jsonPath)
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
