// Command cabd-gen generates the evaluation datasets of the reproduction
// (DESIGN.md, substitution 1) as CSV files with ground-truth labels:
//
//	cabd-gen -kind iot -n 1550 -seed 3 -o tank.csv
//	cabd-gen -kind synthetic -n 20000 -anomaly 0.05 -change 0.02
//	cabd-gen -kind yahoo | head
//
// Output columns: index, value, label (normal / single-anomaly /
// collective-anomaly / change-point), truth (clean value).
package main

import (
	"flag"
	"fmt"
	"os"

	"cabd/internal/dataio"
	"cabd/internal/series"
	"cabd/internal/synth"
)

func main() {
	kind := flag.String("kind", "synthetic", "dataset kind: synthetic | iot | yahoo | kpi")
	n := flag.Int("n", 2000, "series length")
	seed := flag.Int64("seed", 1, "RNG seed")
	anomaly := flag.Float64("anomaly", 0.04, "anomalous-point fraction (synthetic)")
	change := flag.Float64("change", 0.01, "change-point fraction (synthetic)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var s *series.Series
	switch *kind {
	case "synthetic":
		s = synth.Generate(synth.Config{
			N: *n, Seed: *seed,
			SingleFrac:     *anomaly * 0.3,
			CollectiveFrac: *anomaly * 0.7,
			ChangeFrac:     *change,
		})
	case "iot":
		s = synth.IoTTank(*seed, *n)
	case "yahoo":
		s = synth.YahooLike(*seed, *n)
	case "kpi":
		s = synth.KPILike(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "cabd-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataio.WriteLabeled(w, s); err != nil {
		fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
		os.Exit(1)
	}
}
