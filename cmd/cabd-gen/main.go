// Command cabd-gen generates the evaluation datasets of the reproduction
// (DESIGN.md, substitution 1) as CSV files with ground-truth labels:
//
//	cabd-gen -kind iot -n 1550 -seed 3 -o tank.csv
//	cabd-gen -kind synthetic -n 20000 -anomaly 0.05 -change 0.02
//	cabd-gen -kind yahoo | head
//
// With -faults set, the clean series is corrupted by the named fault
// families (internal/faultgen) before being written — hostile fixtures for
// exercising the sanitization layer:
//
//	cabd-gen -kind iot -faults nan,extreme -fault-seed 7
//	cabd-gen -faults drift,levelshift,seasonalswing
//	cabd-gen -faults all
//
// With -channels d (d >= 2) the output is instead a correlated
// d-channel series over one carrier family (-family, -rho); faults are
// injected with the same RNG seed in every channel, so the fault
// footprint lines up across channels — the correlated-failure fixture
// the multivariate detector consumes:
//
//	cabd-gen -channels 3 -family seasonal -faults gap -o multi.csv
//
// Output columns: index, value, label (normal / single-anomaly /
// collective-anomaly / change-point), truth (clean value) — or
// index,c0,c1,... for -channels d.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"cabd/internal/dataio"
	"cabd/internal/faultgen"
	"cabd/internal/series"
	"cabd/internal/synth"
)

func main() {
	kind := flag.String("kind", "synthetic", "dataset kind: synthetic | iot | yahoo | kpi")
	n := flag.Int("n", 2000, "series length")
	seed := flag.Int64("seed", 1, "RNG seed")
	anomaly := flag.Float64("anomaly", 0.04, "anomalous-point fraction (synthetic)")
	change := flag.Float64("change", 0.01, "change-point fraction (synthetic)")
	faults := flag.String("faults", "", "comma-separated fault families to inject (see internal/faultgen; 'all' for every family)")
	faultSeed := flag.Int64("fault-seed", 1, "RNG seed for fault injection")
	out := flag.String("o", "", "output file (default stdout)")
	channels := flag.Int("channels", 1, "channel count; >= 2 emits a correlated multivariate CSV (index,c0,c1,...)")
	family := flag.String("family", "seasonal", "carrier family for -channels >= 2: flat | trend | seasonal | ar")
	rho := flag.Float64("rho", 0.8, "cross-channel correlation for -channels >= 2")
	flag.Parse()

	if *channels >= 2 {
		if err := genMulti(*channels, *family, *seed, *n, *rho, *faults, *faultSeed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(2)
		}
		return
	}

	var s *series.Series
	switch *kind {
	case "synthetic":
		s = synth.Generate(synth.Config{
			N: *n, Seed: *seed,
			SingleFrac:     *anomaly * 0.3,
			CollectiveFrac: *anomaly * 0.7,
			ChangeFrac:     *change,
		})
	case "iot":
		s = synth.IoTTank(*seed, *n)
	case "yahoo":
		s = synth.YahooLike(*seed, *n)
	case "kpi":
		s = synth.KPILike(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "cabd-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *faults != "" {
		kinds, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(2)
		}
		inject(s, kinds, *faultSeed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataio.WriteLabeled(w, s); err != nil {
		fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
		os.Exit(1)
	}
}

// parseFaults resolves the -faults flag to fault families.
func parseFaults(spec string) ([]faultgen.Kind, error) {
	if spec == "all" {
		return faultgen.Kinds(), nil
	}
	valid := map[faultgen.Kind]bool{}
	for _, k := range faultgen.Kinds() {
		valid[k] = true
	}
	var kinds []faultgen.Kind
	for _, field := range strings.Split(spec, ",") {
		k := faultgen.Kind(strings.TrimSpace(field))
		if !valid[k] {
			return nil, fmt.Errorf("unknown fault family %q (have %s)", k, kindList())
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// kindList renders every fault family for the -faults error message.
func kindList() string {
	names := make([]string, 0, len(faultgen.Kinds()))
	for _, k := range faultgen.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// genMulti emits the -channels >= 2 path: a correlated d-channel
// carrier, optionally corrupted by the named fault families with one
// shared RNG seed per (family, round) so the footprint repeats in every
// channel.
func genMulti(d int, family string, seed int64, n int, rho float64, faults string, faultSeed int64, out string) error {
	fam := synth.Family(family)
	ok := false
	for _, f := range synth.Families() {
		if f == fam {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("unknown family %q (have flat, trend, seasonal, ar)", family)
	}
	dims := synth.CorrelatedDims(fam, seed, n, d, rho)
	name := fmt.Sprintf("%s-d%d-s%d", family, d, seed)
	if faults != "" {
		kinds, err := parseFaults(faults)
		if err != nil {
			return err
		}
		for ki, kind := range kinds {
			// One seed per fault family, shared across channels: every
			// injector position draw is value-independent, so identical
			// RNG streams put the fault at the same spots in each channel.
			for k := range dims {
				rng := rand.New(rand.NewSource(faultSeed + int64(ki)*7919))
				dims[k], _ = faultgen.Inject(rng, dims[k], kind)
			}
		}
		name += "+" + faults
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataio.WriteMulti(w, name, dims)
}

// inject corrupts the series in place, keeping labels and clean truth
// aligned when dropout shortens it.
func inject(s *series.Series, kinds []faultgen.Kind, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, k := range kinds {
		var rep faultgen.Report
		s.Values, rep = faultgen.Inject(rng, s.Values, k)
		if k != faultgen.KindDropout {
			continue
		}
		removed := map[int]bool{}
		for _, i := range rep.Indices {
			removed[i] = true
		}
		if s.Labels != nil {
			kept := s.Labels[:0]
			for i, l := range s.Labels {
				if !removed[i] {
					kept = append(kept, l)
				}
			}
			s.Labels = kept
		}
		if s.Truth != nil {
			kept := s.Truth[:0]
			for i, v := range s.Truth {
				if !removed[i] {
					kept = append(kept, v)
				}
			}
			s.Truth = kept
		}
	}
}
