// Command cabd-gen generates the evaluation datasets of the reproduction
// (DESIGN.md, substitution 1) as CSV files with ground-truth labels:
//
//	cabd-gen -kind iot -n 1550 -seed 3 -o tank.csv
//	cabd-gen -kind synthetic -n 20000 -anomaly 0.05 -change 0.02
//	cabd-gen -kind yahoo | head
//
// With -faults set, the clean series is corrupted by the named fault
// families (internal/faultgen) before being written — hostile fixtures for
// exercising the sanitization layer:
//
//	cabd-gen -kind iot -faults nan,extreme -fault-seed 7
//	cabd-gen -faults all
//
// Output columns: index, value, label (normal / single-anomaly /
// collective-anomaly / change-point), truth (clean value).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"cabd/internal/dataio"
	"cabd/internal/faultgen"
	"cabd/internal/series"
	"cabd/internal/synth"
)

func main() {
	kind := flag.String("kind", "synthetic", "dataset kind: synthetic | iot | yahoo | kpi")
	n := flag.Int("n", 2000, "series length")
	seed := flag.Int64("seed", 1, "RNG seed")
	anomaly := flag.Float64("anomaly", 0.04, "anomalous-point fraction (synthetic)")
	change := flag.Float64("change", 0.01, "change-point fraction (synthetic)")
	faults := flag.String("faults", "", "comma-separated fault families to inject: nan, flatline, extreme, dropout, or 'all'")
	faultSeed := flag.Int64("fault-seed", 1, "RNG seed for fault injection")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var s *series.Series
	switch *kind {
	case "synthetic":
		s = synth.Generate(synth.Config{
			N: *n, Seed: *seed,
			SingleFrac:     *anomaly * 0.3,
			CollectiveFrac: *anomaly * 0.7,
			ChangeFrac:     *change,
		})
	case "iot":
		s = synth.IoTTank(*seed, *n)
	case "yahoo":
		s = synth.YahooLike(*seed, *n)
	case "kpi":
		s = synth.KPILike(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "cabd-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *faults != "" {
		kinds, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(2)
		}
		inject(s, kinds, *faultSeed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataio.WriteLabeled(w, s); err != nil {
		fmt.Fprintf(os.Stderr, "cabd-gen: %v\n", err)
		os.Exit(1)
	}
}

// parseFaults resolves the -faults flag to fault families.
func parseFaults(spec string) ([]faultgen.Kind, error) {
	if spec == "all" {
		return faultgen.Kinds(), nil
	}
	valid := map[faultgen.Kind]bool{}
	for _, k := range faultgen.Kinds() {
		valid[k] = true
	}
	var kinds []faultgen.Kind
	for _, field := range strings.Split(spec, ",") {
		k := faultgen.Kind(strings.TrimSpace(field))
		if !valid[k] {
			return nil, fmt.Errorf("unknown fault family %q (have nan, flatline, extreme, dropout)", k)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// inject corrupts the series in place, keeping labels and clean truth
// aligned when dropout shortens it.
func inject(s *series.Series, kinds []faultgen.Kind, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, k := range kinds {
		var rep faultgen.Report
		s.Values, rep = faultgen.Inject(rng, s.Values, k)
		if k != faultgen.KindDropout {
			continue
		}
		removed := map[int]bool{}
		for _, i := range rep.Indices {
			removed[i] = true
		}
		if s.Labels != nil {
			kept := s.Labels[:0]
			for i, l := range s.Labels {
				if !removed[i] {
					kept = append(kept, l)
				}
			}
			s.Labels = kept
		}
		if s.Truth != nil {
			kept := s.Truth[:0]
			for i, v := range s.Truth {
				if !removed[i] {
					kept = append(kept, v)
				}
			}
			s.Truth = kept
		}
	}
}
