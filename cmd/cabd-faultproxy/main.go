// Command cabd-faultproxy is a fault-injecting HTTP reverse proxy for
// exercising the cabd collector's resilient transport against network
// failure. It forwards to -target and injects the current fault mode
// (pass, reset, error, hang, slow); a separate admin listener switches
// modes at runtime:
//
//	POST /mode?mode=error&n=3   inject 503 into the next 3 requests
//	POST /mode?mode=reset       reset every connection until changed
//	GET  /mode                  report the current mode and fault count
//
// Usage:
//
//	cabd-faultproxy -listen :8081 -target http://127.0.0.1:8080 -admin 127.0.0.1:8082
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"

	"cabd/internal/agent/faultproxy"
)

func main() {
	var (
		listen    = flag.String("listen", ":8081", "proxy listen address")
		target    = flag.String("target", "http://127.0.0.1:8080", "upstream cabd-serve base URL")
		admin     = flag.String("admin", "127.0.0.1:8082", "admin listen address (mode control)")
		mode      = flag.String("mode", "pass", "initial fault mode (pass|reset|error|hang|slow)")
		portfile  = flag.String("portfile", "", "write the proxy's bound port to this file once listening")
		adminfile = flag.String("adminportfile", "", "write the admin listener's bound port to this file once listening")
	)
	flag.Parse()

	m, err := faultproxy.ParseMode(*mode)
	if err != nil {
		log.Fatalf("cabd-faultproxy: %v", err)
	}
	p, err := faultproxy.New(*target)
	if err != nil {
		log.Fatalf("cabd-faultproxy: %v", err)
	}
	p.Set(m, 0)

	amux := http.NewServeMux()
	amux.HandleFunc("POST /mode", func(w http.ResponseWriter, r *http.Request) {
		md, err := faultproxy.ParseMode(r.URL.Query().Get("mode"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err = strconv.Atoi(s); err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		p.Set(md, n)
		log.Printf("cabd-faultproxy: mode -> %s (n=%d)", md, n)
		fmt.Fprintf(w, "mode %s n %d\n", md, n)
	})
	amux.HandleFunc("GET /mode", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "mode %s faults %d\n", p.Mode(), p.Faults())
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cabd-faultproxy: listen %s: %v", *listen, err)
	}
	aln, err := net.Listen("tcp", *admin)
	if err != nil {
		log.Fatalf("cabd-faultproxy: admin listen %s: %v", *admin, err)
	}
	writePort := func(path string, l net.Listener) {
		if path == "" {
			return
		}
		port := l.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(path, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatalf("cabd-faultproxy: write %s: %v", path, err)
		}
	}
	writePort(*portfile, ln)
	writePort(*adminfile, aln)
	log.Printf("cabd-faultproxy: %s -> %s (admin %s, mode %s)", ln.Addr(), *target, aln.Addr(), m)

	go func() {
		if err := http.Serve(aln, amux); err != nil {
			log.Fatalf("cabd-faultproxy: admin: %v", err)
		}
	}()
	if err := http.Serve(ln, p); err != nil {
		log.Fatalf("cabd-faultproxy: serve: %v", err)
	}
}
