// Command cabd-agent is the cabd collector: it tails time-series
// sources (*.csv, *.ndjson) from a directory, runs streaming detection
// locally, and forwards confirmed detections to a cabd-serve instance
// with an at-least-once crash-safe transport — capped exponential
// backoff with seeded jitter (honoring Retry-After), a bounded
// disk-backed spill buffer for disconnects, idempotency keys for
// server-side dedup, and a checkpoint (source offsets + detector
// snapshots) that makes restarts lossless.
//
// Configuration layers, later wins: built-in defaults, -config JSON
// file, CABD_AGENT_* environment, flags. SIGHUP re-runs the same
// layering and hot-applies the safe subset (pacing, batching, spill
// cap, retry shape). SIGINT/SIGTERM drains: pending detections spill to
// disk, the checkpoint is written, and the process exits cleanly.
//
// Usage:
//
//	cabd-agent -server http://127.0.0.1:8080 -source-dir /var/data -state-dir /var/lib/cabd-agent
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cabd/internal/agent"
)

func main() {
	// Pre-scan for -config so the file layer loads before flag
	// registration; LoadConfig re-parses the full argument list.
	pre := flag.NewFlagSet("cabd-agent", flag.ContinueOnError)
	pre.SetOutput(discard{})
	configPath := pre.String("config", "", "path to JSON config file")
	_ = pre.Parse(os.Args[1:]) // unknown flags are fine here; LoadConfig validates

	cfg, err := agent.LoadConfig(*configPath, os.LookupEnv, os.Args[1:])
	if err != nil {
		log.Fatalf("cabd-agent: %v", err)
	}
	cfg.Logf = log.Printf

	a, err := agent.New(cfg)
	if err != nil {
		log.Fatalf("cabd-agent: %v", err)
	}
	log.Printf("cabd-agent: %q tailing %s -> %s (state %s)",
		cfg.Name, cfg.SourceDir, cfg.Server, orNone(cfg.StateDir))

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigc {
			if sig == syscall.SIGHUP {
				next, err := agent.LoadConfig(*configPath, os.LookupEnv, os.Args[1:])
				if err != nil {
					log.Printf("cabd-agent: SIGHUP reload rejected: %v", err)
					continue
				}
				next.Logf = log.Printf
				a.Reload(next)
				continue
			}
			log.Printf("cabd-agent: %s received, draining", sig)
			cancel()
			return
		}
	}()

	if err := a.Run(ctx); err != nil {
		log.Fatalf("cabd-agent: drain: %v", err)
	}
	log.Printf("cabd-agent: drained cleanly (%d detections pending replay on next start)", a.Pending())
}

// discard silences the pre-scan flag set (it sees unknown flags by
// design).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
