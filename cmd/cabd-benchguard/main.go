// Command cabd-benchguard gates the raw-speed scaling sweep: it reads
// the scale rows of a BENCH_runtime.json snapshot (cabd-bench -exp
// scale) and fails when any row regresses past the checked-in
// tolerances, so a perf regression breaks the build the same way a
// failing test does.
//
//	cabd-benchguard -json BENCH_runtime.json -tol scripts/bench_tolerances.json
//
// The tolerance file pins a baseline speedup per effective core count
// (min(GOMAXPROCS, NumCPU) — an 8-proc request on a 1-core container is
// still one core) and a relative margin; a row fails when its measured
// speedup drops below baseline*(1-margin). Rows whose core count has no
// exact entry use the largest entry not exceeding it. Any row whose
// detections diverged from the sequential oracle (equal=false) fails
// unconditionally: speed means nothing if the answers changed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"cabd/internal/experiments"
)

// Tolerances is the checked-in regression budget for the scale sweep.
type Tolerances struct {
	// Margin is the allowed relative drop below baseline (0.2 = 20%).
	Margin float64 `json:"margin"`
	// BaselineSpeedupByCores maps effective core count (as a string, the
	// JSON object key) to the baseline oracle/fast speedup at that
	// parallelism.
	BaselineSpeedupByCores map[string]float64 `json:"baseline_speedup_by_cores"`
}

func main() {
	jsonPath := flag.String("json", "BENCH_runtime.json", "runtime snapshot to check")
	tolPath := flag.String("tol", "scripts/bench_tolerances.json", "tolerance file")
	flag.Parse()

	snap, err := readSnapshot(*jsonPath)
	if err != nil {
		fail("reading %s: %v", *jsonPath, err)
	}
	if len(snap.Scale) == 0 {
		fail("%s holds no scale rows; run `cabd-bench -exp scale -json %s` first", *jsonPath, *jsonPath)
	}
	tol, err := readTolerances(*tolPath)
	if err != nil {
		fail("reading %s: %v", *tolPath, err)
	}

	bad := 0
	for _, p := range snap.Scale {
		if !p.Equal {
			fmt.Fprintf(os.Stderr,
				"cabd-benchguard: n=%d procs=%d cand_z=%.1f: detections DIVERGED from the sequential oracle\n",
				p.N, p.Procs, p.CandZ)
			bad++
			continue
		}
		base, ok := baselineFor(tol, p.Cores)
		if !ok {
			fmt.Fprintf(os.Stderr,
				"cabd-benchguard: n=%d procs=%d: no tolerance entry covers %d cores\n",
				p.N, p.Procs, p.Cores)
			bad++
			continue
		}
		floor := base * (1 - tol.Margin)
		if p.Speedup < floor {
			fmt.Fprintf(os.Stderr,
				"cabd-benchguard: n=%d procs=%d cores=%d cand_z=%.1f: speedup %.2fx below floor %.2fx (baseline %.2fx, margin %.0f%%)\n",
				p.N, p.Procs, p.Cores, p.CandZ, p.Speedup, floor, base, 100*tol.Margin)
			bad++
		}
	}
	if bad > 0 {
		fail("%d of %d scale rows regressed", bad, len(snap.Scale))
	}
	fmt.Printf("cabd-benchguard: %d scale rows within tolerance\n", len(snap.Scale))
}

func readSnapshot(path string) (experiments.RuntimeSnapshot, error) {
	var snap experiments.RuntimeSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	err = json.Unmarshal(data, &snap)
	return snap, err
}

func readTolerances(path string) (Tolerances, error) {
	var tol Tolerances
	data, err := os.ReadFile(path)
	if err != nil {
		return tol, err
	}
	if err := json.Unmarshal(data, &tol); err != nil {
		return tol, err
	}
	if tol.Margin < 0 || tol.Margin >= 1 {
		return tol, fmt.Errorf("margin %v out of [0, 1)", tol.Margin)
	}
	if len(tol.BaselineSpeedupByCores) == 0 {
		return tol, fmt.Errorf("no baseline entries")
	}
	for k := range tol.BaselineSpeedupByCores {
		if _, err := strconv.Atoi(k); err != nil {
			return tol, fmt.Errorf("non-integer cores key %q", k)
		}
	}
	return tol, nil
}

// baselineFor returns the baseline speedup for an effective core count:
// the exact entry when present, otherwise the entry of the largest core
// count not exceeding it (a 3-core machine is held to the 2-core
// baseline, never the 4-core one).
func baselineFor(tol Tolerances, cores int) (float64, bool) {
	bestK := -1
	bestV := 0.0
	for k, v := range tol.BaselineSpeedupByCores {
		kc, _ := strconv.Atoi(k)
		if kc <= cores && kc > bestK {
			bestK, bestV = kc, v
		}
	}
	return bestV, bestK >= 0
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cabd-benchguard: "+format+"\n", args...)
	os.Exit(1)
}
