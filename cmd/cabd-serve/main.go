// Command cabd-serve runs the cabd detection service: one-shot and
// batch detection, NDJSON streaming ingest and interactive labeling
// sessions over a JSON HTTP API (see cabd/httpapi for the wire contract
// and internal/server for the implementation).
//
// Operational endpoints: /healthz (liveness), /readyz (readiness,
// 503 while draining), /metrics (Prometheus text) and /debug/vars
// (expvar). SIGINT/SIGTERM triggers a graceful drain: the listener
// stops accepting, in-flight requests finish, sessions are cancelled
// and the worker pool is released, all bounded by -drain-timeout.
//
// Usage:
//
//	cabd-serve -addr :8080
//	cabd-serve -addr 127.0.0.1:0 -portfile /tmp/cabd.port
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cabd"
	"cabd/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		portfile     = flag.String("portfile", "", "write the bound port number to this file once listening")
		workers      = flag.Int("workers", 4, "detection worker-pool size")
		queue        = flag.Int("queue", 64, "request queue depth behind the workers (full queue sheds with 429)")
		maxBody      = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request detection deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "clamp on client-supplied deadlines")
		maxSessions  = flag.Int("max-sessions", 64, "cap on live interactive sessions")
		maxStreams   = flag.Int("max-streams", 256, "cap on live streaming detectors")
		tenantQuota  = flag.Int("max-streams-per-tenant", 0, "per-tenant cap on live streams (tenant = id prefix before '/'; 0 disables)")
		shards       = flag.Int("stream-shards", 0, "stream registry shard count (0 keeps the server default)")
		mailbox      = flag.Int("stream-mailbox", 0, "per-shard mailbox depth; a full mailbox sheds with 429 (0 keeps the server default)")
		hopTimeout   = flag.Duration("stream-hop-timeout", 0, "per-hop analysis deadline inside streaming detectors (0 disables)")
		fullEngine   = flag.Bool("stream-full-rerun", false, "use the full-rerun stream engine instead of the incremental one (differential-oracle mode)")
		sessionTTL   = flag.Duration("session-ttl", 10*time.Minute, "idle session eviction horizon")
		streamTTL    = flag.Duration("stream-ttl", 10*time.Minute, "idle stream eviction horizon")
		janitorEvery = flag.Duration("janitor-every", 30*time.Second, "idle-eviction sweep period (negative disables the janitor)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		checkpoint   = flag.String("checkpoint-dir", "", "directory for crash-safe state (ingest journal + session checkpoints); empty disables persistence")
		confidence   = flag.Float64("confidence", 0, "default termination confidence γ (0 keeps the library default)")
		seed         = flag.Int64("seed", 0, "default run seed (0 keeps the library default)")
	)
	flag.Parse()

	opts := cabd.Options{Confidence: *confidence, Seed: *seed}
	engine := cabd.StreamEngineIncremental
	if *fullEngine {
		engine = cabd.StreamEngineFull
	}
	srv, err := server.New(server.Config{
		Options:             opts,
		Workers:             *workers,
		QueueDepth:          *queue,
		MaxBodyBytes:        *maxBody,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		MaxSessions:         *maxSessions,
		MaxStreams:          *maxStreams,
		MaxStreamsPerTenant: *tenantQuota,
		StreamShards:        *shards,
		StreamMailbox:       *mailbox,
		StreamHopTimeout:    *hopTimeout,
		StreamEngine:        engine,
		SessionTTL:          *sessionTTL,
		StreamTTL:           *streamTTL,
		JanitorEvery:        *janitorEvery,
		CheckpointDir:       *checkpoint,
		Logf:                log.Printf,
		ExpvarName:          "cabd",
	})
	if err != nil {
		log.Fatalf("cabd-serve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cabd-serve: listen %s: %v", *addr, err)
	}
	if *portfile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portfile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatalf("cabd-serve: write portfile: %v", err)
		}
	}
	log.Printf("cabd-serve: listening on %s", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("cabd-serve: %s received, draining (bound %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("cabd-serve: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and finish in-flight requests first, then drain the
	// server's own goroutines (sessions, workers, janitor).
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("cabd-serve: listener shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Printf("cabd-serve: drain: %v", err)
		os.Exit(1)
	}
	log.Printf("cabd-serve: drained cleanly")
}
