// Command cabd-repair cleans a univariate series end to end: CABD detects
// the errors (interactively when -interactive is set), the IMR algorithm
// repairs them, and the repaired series is written out. Change points —
// real events — are preserved untouched, the paper's core requirement.
//
//	cabd-repair readings.csv > cleaned.csv
//	cabd-repair -interactive -speed-max 5 -speed-min -5 readings.csv
//
// With speed bounds set, a SCREEN pass enforces them after IMR (useful
// when physics bounds the signal, e.g. tank levels). Dirty input (NaN,
// ±Inf, absurd magnitudes) is sanitized before detection; -sanitize picks
// the policy and -timeout bounds the detection phase.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cabd"
	"cabd/internal/dataio"
	"cabd/internal/sanitize"
)

func main() {
	interactive := flag.Bool("interactive", false, "ask for labels on stdin; labeled values repair exactly")
	confidence := flag.Float64("confidence", 0.8, "required detection confidence (γ)")
	speedMax := flag.Float64("speed-max", 0, "optional maximum rise per step (SCREEN pass)")
	speedMin := flag.Float64("speed-min", 0, "optional maximum fall per step (negative; SCREEN pass)")
	sanitizeFlag := flag.String("sanitize", "interpolate", "bad-value policy: interpolate, drop or reject")
	timeout := flag.Duration("timeout", 0, "detection deadline (e.g. 30s); 0 means none")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cabd-repair [flags] series.csv\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	policy, err := cabd.ParseSanitizePolicy(*sanitizeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabd-repair: %v\n", err)
		os.Exit(2)
	}
	values, err := dataio.ReadValuesFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabd-repair: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	det := cabd.New(cabd.Options{Confidence: *confidence, Sanitize: policy})
	known := map[int]float64{}
	var res *cabd.Result
	if *interactive {
		stdin := bufio.NewReader(os.Stdin)
		res, err = det.DetectInteractiveCtx(ctx, values, func(i int) cabd.Label {
			label, trueVal, hasVal := promptWithValue(stdin, i, values[i])
			if hasVal {
				known[i] = trueVal
			}
			return label
		})
		if err == nil {
			fmt.Fprintf(os.Stderr, "# %d labels provided, %d with corrected values\n",
				res.Queries, len(known))
		}
	} else {
		res, err = det.DetectCtx(ctx, values)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabd-repair: %v\n", err)
		os.Exit(1)
	}
	if rep := res.Sanitize; rep != nil && rep.Bad() > 0 {
		fmt.Fprintf(os.Stderr, "# sanitize: %s\n", rep)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "# degraded to %s scoring: %s\n", res.Strategy, res.DegradeReason)
	}

	// Repair must run on a finite series: detection saw the sanitized
	// copy, and leaving NaN/Inf in the repair base would let them leak
	// into the cleaned output at non-anomaly positions. Interpolation
	// keeps the original layout, so detection indices line up even when
	// the detection policy was drop.
	base := values
	if clean, _, _, serr := sanitize.Series(values, sanitize.Config{}); serr == nil {
		base = clean
	}
	repaired := cabd.Repair(base, res, known, cabd.RepairOptions{})
	if *speedMax > 0 && *speedMin < 0 {
		repaired = cabd.RepairSpeedConstrained(repaired, *speedMax, *speedMin)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabd-repair: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "index,original,repaired,changed")
	for i, v := range values {
		changed := 0
		//cabd:lint-ignore floateq repair passes untouched points through bit-identically; changed means not-bit-equal
		if repaired[i] != v {
			changed = 1
		}
		fmt.Fprintf(w, "%d,%.6f,%.6f,%d\n", i, v, repaired[i], changed)
	}
	fmt.Fprintf(os.Stderr, "# repaired %d of %d points (%d errors, %d events preserved)\n",
		countChanged(values, repaired), len(values), len(res.Anomalies), len(res.ChangePoints))
}

// promptWithValue asks for a label; for anomalies the user may append the
// corrected value ("a 42.5").
func promptWithValue(r *bufio.Reader, i int, v float64) (cabd.Label, float64, bool) {
	for {
		fmt.Fprintf(os.Stderr,
			"point %d (value %.4g): [a]nomaly [c]hange [n]ormal (anomaly may add true value, e.g. 'a 42.5')? ",
			i, v)
		line, err := r.ReadString('\n')
		if err != nil {
			return cabd.Normal, 0, false
		}
		fields := strings.Fields(strings.ToLower(strings.TrimSpace(line)))
		if len(fields) == 0 {
			return cabd.Normal, 0, false
		}
		switch fields[0] {
		case "a", "anomaly":
			if len(fields) > 1 {
				var tv float64
				if _, err := fmt.Sscanf(fields[1], "%g", &tv); err == nil {
					return cabd.SingleAnomaly, tv, true
				}
			}
			return cabd.SingleAnomaly, 0, false
		case "c", "change":
			return cabd.ChangePoint, 0, false
		case "n", "normal":
			return cabd.Normal, 0, false
		}
	}
}

func countChanged(a, b []float64) int {
	n := 0
	for i := range a {
		//cabd:lint-ignore floateq repair passes untouched points through bit-identically; changed means not-bit-equal
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
