// Package cabd is a Go implementation of CABD — the Comprehensive Anomaly
// and change point (Break point) Detection algorithm for time series of
// "User-driven Error Detection for Time Series with Events" (Le & Papotti,
// ICDE 2020).
//
// CABD distinguishes data errors (single and collective anomalies) from
// notable events (change points) in a single pass, using the
// non-parametric Inverse Nearest Neighbor (INN) concept and a
// probabilistic classifier. When an interactive labeler is available, an
// uncertainty-sampling active-learning loop raises detection quality to a
// user-chosen confidence with a handful of annotations — typically 2-5
// labels per series.
//
// Quick start:
//
//	det := cabd.New(cabd.Options{})
//	res := det.Detect(values)
//	for _, a := range res.Anomalies { ... }
//
// Interactive detection plugs any labeling function — a UI prompt, a rule
// system, or recorded ground truth:
//
//	res := det.DetectInteractive(values, func(i int) cabd.Label {
//		return askUser(i)
//	})
package cabd

import (
	"context"

	"cabd/internal/core"
	"cabd/internal/ml/forest"
	"cabd/internal/series"
)

// Label classifies a single point of a series.
type Label uint8

// Point labels, in the vocabulary of the paper: errors are single or
// collective anomalies; change points are events to preserve.
const (
	Normal            = Label(series.Normal)
	SingleAnomaly     = Label(series.SingleAnomaly)
	CollectiveAnomaly = Label(series.CollectiveAnomaly)
	ChangePoint       = Label(series.ChangePoint)
)

// String implements fmt.Stringer.
func (l Label) String() string { return series.Label(l).String() }

// IsAnomaly reports whether the label denotes a data error.
func (l Label) IsAnomaly() bool { return series.Label(l).IsAnomaly() }

// Strategy selects the neighborhood computation.
type Strategy = core.Strategy

// Neighborhood strategies. BinaryINN (the default) is the paper's
// optimized algorithm; LinearINN is the unoptimized scan; FixedKNN is the
// degraded k-nearest-neighbor ablation.
const (
	BinaryINN    = core.BinaryINN
	LinearINN    = core.LinearINN
	MutualSetINN = core.MutualSetINN
	FixedKNN     = core.FixedKNN
)

// Options configures a Detector; zero-value fields take the paper's
// defaults (5% INN prune, confidence γ = 0.8, 100-tree random forest).
type Options = core.Options

// Detection is one reported anomaly or change point.
type Detection struct {
	// Index is the position in the input slice.
	Index int
	// Subtype is SingleAnomaly, CollectiveAnomaly or ChangePoint.
	Subtype Label
	// Confidence is the classifier's confidence weight in [0, 1].
	Confidence float64
}

// Result is the outcome of one detection run.
type Result struct {
	// Anomalies are the detected data errors, sorted by index.
	Anomalies []Detection
	// ChangePoints are the detected events, sorted by index.
	ChangePoints []Detection
	// Queries is the number of labels requested from the labeler
	// (0 for unsupervised runs).
	Queries int

	// Sanitize reports what input sanitization found and repaired
	// (NaN/Inf counts, synthesized or dropped points, constant-series
	// and too-short flags). Nil only for results built outside the
	// sanitizing entry points.
	Sanitize *SanitizeReport
	// Model is the final trained classifier ensemble of the run — the
	// state an active-learning session accumulated through its labels.
	// The serving layer serializes it (forest.Snapshot) into session
	// checkpoints so a restarted server holds the exact model that
	// produced the verdict. Nil when no classification ran.
	Model *forest.Forest
	// Stages is the per-stage wall time of this run, populated only when
	// Options.Obs carries a recorder.
	Stages StageTimings
	// Strategy is the neighborhood strategy actually used; it differs
	// from the configured one when the run degraded.
	Strategy Strategy
	// Degraded is set when the detector fell back to FixedKNN scoring —
	// either the candidate count exceeded Options.DegradeCandidates or
	// a context deadline left too little headroom for full INN
	// computation. DegradeReason says which.
	Degraded bool
	// DegradeReason is a human-readable downgrade explanation.
	DegradeReason string
}

// AnomalyIndices returns the detected anomaly positions, sorted.
func (r *Result) AnomalyIndices() []int {
	out := make([]int, len(r.Anomalies))
	for i, d := range r.Anomalies {
		out[i] = d.Index
	}
	return out
}

// ChangePointIndices returns the detected change-point positions, sorted.
func (r *Result) ChangePointIndices() []int {
	out := make([]int, len(r.ChangePoints))
	for i, d := range r.ChangePoints {
		out[i] = d.Index
	}
	return out
}

// Detector detects anomalies and change points in univariate, equally
// spaced time series. It is stateless across series and safe to reuse.
type Detector struct {
	inner *core.Detector
}

// New returns a Detector with the given options.
func New(opts Options) *Detector {
	return &Detector{inner: core.NewDetector(opts)}
}

// Detect runs the unsupervised pipeline over values: candidate estimation
// on the second difference, INN score computation, and hypothesis-
// bootstrapped classification. No labels are requested.
//
// Input is sanitized first under Options.Sanitize (NaN/±Inf repair by
// interpolation, by default); hostile input that cannot be detected on —
// empty, too short, all-bad — yields an empty Result whose Sanitize
// report says why. Use DetectCtx for the error-returning form.
func (d *Detector) Detect(values []float64) *Result {
	res, _ := d.DetectCtx(context.Background(), values)
	return res
}

// DetectInteractive runs the full active-learning pipeline: after the
// unsupervised bootstrap, the most uncertain candidate points are passed
// to label until every detection reaches the configured confidence or the
// query budget is exhausted. label receives the index of the point to
// annotate and returns its class. Input is sanitized as in Detect.
func (d *Detector) DetectInteractive(values []float64, label func(i int) Label) *Result {
	res, _ := d.DetectInteractiveCtx(context.Background(), values, label)
	return res
}

type labelerFunc func(i int) Label

func (f labelerFunc) Label(i int) series.Label { return series.Label(f(i)) }

func convert(res *core.Result) *Result {
	out := &Result{
		Queries:       res.Queries,
		Model:         res.Model,
		Stages:        res.Stages,
		Strategy:      res.Strategy,
		Degraded:      res.Degraded,
		DegradeReason: res.DegradeReason,
	}
	for _, det := range res.Anomalies {
		out.Anomalies = append(out.Anomalies, Detection{
			Index: det.Index, Subtype: Label(det.Subtype),
			Confidence: det.Confidence,
		})
	}
	for _, det := range res.ChangePoints {
		out.ChangePoints = append(out.ChangePoints, Detection{
			Index: det.Index, Subtype: Label(det.Subtype),
			Confidence: det.Confidence,
		})
	}
	return out
}
