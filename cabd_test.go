package cabd

import (
	"math"
	"math/rand"
	"testing"
)

func demoSeries(seed int64) (vals []float64, spikes []int, shift int) {
	rng := rand.New(rand.NewSource(seed))
	vals = make([]float64, 1000)
	ar := 0.0
	for i := range vals {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		vals[i] = ar + 1.5*math.Sin(2*math.Pi*float64(i)/120)
	}
	spikes = []int{200, 500, 800}
	for _, p := range spikes {
		vals[p] += 20
	}
	shift = 650
	for i := shift; i < len(vals); i++ {
		vals[i] += 5
	}
	return vals, spikes, shift
}

func TestDetectFindsSpikes(t *testing.T) {
	vals, spikes, _ := demoSeries(1)
	res := New(Options{}).Detect(vals)
	found := map[int]bool{}
	for _, a := range res.Anomalies {
		found[a.Index] = true
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("spike at %d not detected; got %v", p, res.AnomalyIndices())
		}
	}
	if res.Queries != 0 {
		t.Errorf("unsupervised Detect consumed %d queries", res.Queries)
	}
}

func TestDetectInteractiveUsesLabeler(t *testing.T) {
	vals, spikes, shift := demoSeries(2)
	truth := func(i int) Label {
		for _, p := range spikes {
			if i == p {
				return SingleAnomaly
			}
		}
		if i >= shift-1 && i <= shift+1 {
			return ChangePoint
		}
		return Normal
	}
	calls := 0
	res := New(Options{}).DetectInteractive(vals, func(i int) Label {
		calls++
		return truth(i)
	})
	if calls != res.Queries {
		t.Errorf("labeler calls %d != reported queries %d", calls, res.Queries)
	}
	found := map[int]bool{}
	for _, a := range res.Anomalies {
		found[a.Index] = true
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("spike at %d not detected interactively", p)
		}
	}
	// The level shift must surface as a change point near the truth.
	ok := false
	for _, c := range res.ChangePoints {
		if c.Index >= shift-2 && c.Index <= shift+2 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("shift at %d not among change points %v", shift, res.ChangePointIndices())
	}
}

func TestDetectionMetadata(t *testing.T) {
	vals, _, _ := demoSeries(3)
	res := New(Options{}).Detect(vals)
	for _, d := range res.Anomalies {
		if !d.Subtype.IsAnomaly() {
			t.Errorf("anomaly detection carries subtype %v", d.Subtype)
		}
		if d.Confidence < 0 || d.Confidence > 1 {
			t.Errorf("confidence out of range: %v", d.Confidence)
		}
	}
	for _, d := range res.ChangePoints {
		if d.Subtype != ChangePoint {
			t.Errorf("change detection carries subtype %v", d.Subtype)
		}
	}
}

func TestLabelStrings(t *testing.T) {
	if Normal.String() != "normal" || ChangePoint.String() != "change-point" {
		t.Error("label strings broken")
	}
	if !SingleAnomaly.IsAnomaly() || ChangePoint.IsAnomaly() {
		t.Error("IsAnomaly broken")
	}
}

func TestEmptyInput(t *testing.T) {
	res := New(Options{}).Detect(nil)
	if len(res.Anomalies) != 0 || len(res.ChangePoints) != 0 {
		t.Errorf("empty input produced detections: %+v", res)
	}
}
