package cabd

import (
	"bytes"
	"fmt"
	"testing"

	"cabd/internal/inn"
	"cabd/internal/synth"
)

// fingerprint serializes the deterministic surface of a result — indices,
// classes and degradation flags, not wall-time-dependent fields — so runs
// can be compared byte for byte.
func fingerprint(res *Result) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "strategy=%s degraded=%v reason=%q\n",
		res.Strategy, res.Degraded, res.DegradeReason)
	for _, d := range res.Anomalies {
		fmt.Fprintf(&b, "a %d %s\n", d.Index, d.Subtype)
	}
	for _, d := range res.ChangePoints {
		fmt.Fprintf(&b, "c %d %s\n", d.Index, d.Subtype)
	}
	return b.String()
}

// TestDetectDeterministic runs fixed-seed detection on the 2k synthetic
// fixture repeatedly and demands byte-identical output: the pipeline's
// stochastic components (forest bagging, GMM seeding) are all driven by
// Options.Seed, and the parallel INN scoring must not leak scheduling
// nondeterminism into the result.
func TestDetectDeterministic(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	first := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	if len(first) == 0 {
		t.Fatal("empty fingerprint")
	}
	if !bytes.Contains([]byte(first), []byte("\na ")) && !bytes.Contains([]byte(first), []byte("\nc ")) {
		t.Fatalf("fixture produced no detections:\n%s", first)
	}
	for run := 2; run <= 4; run++ {
		got := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
		if got != first {
			t.Fatalf("run %d diverged:\n--- run 1\n%s--- run %d\n%s", run, first, run, got)
		}
	}
}

// TestDetectEngineDifferential runs the same fixture under the default
// rank-query INN engine and the legacy full-k-NN probe engine
// (CABD_INN_ENGINE=legacy, read at computer construction): the two
// engines answer identical membership questions, so detections must be
// byte-identical.
func TestDetectEngineDifferential(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	rank := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	t.Setenv(inn.LegacyEngineEnv, "legacy")
	legacy := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	if rank != legacy {
		t.Fatalf("engines disagree:\n--- rank\n%s--- legacy\n%s", rank, legacy)
	}
}

// TestDetectDeterministicWithRecorder verifies that attaching a metrics
// recorder does not perturb detections (observability must be read-only
// with respect to the pipeline's decisions).
func TestDetectDeterministicWithRecorder(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	plain := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	instrumented := fingerprint(New(Options{Seed: 1, Obs: NewRecorder()}).Detect(s.Values))
	if plain != instrumented {
		t.Fatalf("recorder changed detections:\n--- nil\n%s--- recorder\n%s", plain, instrumented)
	}
}
