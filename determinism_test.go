package cabd

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"testing"

	"cabd/internal/core"
	"cabd/internal/inn"
	"cabd/internal/sanitize"
	"cabd/internal/synth"
)

// fingerprint serializes the deterministic surface of a result — indices,
// classes and degradation flags, not wall-time-dependent fields — so runs
// can be compared byte for byte.
func fingerprint(res *Result) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "strategy=%s degraded=%v reason=%q\n",
		res.Strategy, res.Degraded, res.DegradeReason)
	for _, d := range res.Anomalies {
		fmt.Fprintf(&b, "a %d %s\n", d.Index, d.Subtype)
	}
	for _, d := range res.ChangePoints {
		fmt.Fprintf(&b, "c %d %s\n", d.Index, d.Subtype)
	}
	return b.String()
}

// TestDetectDeterministic runs fixed-seed detection on the 2k synthetic
// fixture repeatedly and demands byte-identical output: the pipeline's
// stochastic components (forest bagging, GMM seeding) are all driven by
// Options.Seed, and the parallel INN scoring must not leak scheduling
// nondeterminism into the result.
func TestDetectDeterministic(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	first := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	if len(first) == 0 {
		t.Fatal("empty fingerprint")
	}
	if !bytes.Contains([]byte(first), []byte("\na ")) && !bytes.Contains([]byte(first), []byte("\nc ")) {
		t.Fatalf("fixture produced no detections:\n%s", first)
	}
	for run := 2; run <= 4; run++ {
		got := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
		if got != first {
			t.Fatalf("run %d diverged:\n--- run 1\n%s--- run %d\n%s", run, first, run, got)
		}
	}
}

// TestDetectEngineDifferential runs the same fixture under the default
// rank-query INN engine and the legacy full-k-NN probe engine
// (CABD_INN_ENGINE=legacy, read at computer construction): the two
// engines answer identical membership questions, so detections must be
// byte-identical.
func TestDetectEngineDifferential(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	rank := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	t.Setenv(inn.LegacyEngineEnv, "legacy")
	legacy := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	if rank != legacy {
		t.Fatalf("engines disagree:\n--- rank\n%s--- legacy\n%s", rank, legacy)
	}
}

// TestDetectSeqOracleDifferential is the raw-speed pass's central
// contract: the optimized pipeline — SoA feature matrix, per-tree
// parallel forest training, tree-major batch inference — must emit
// byte-identical detections to the sequential row-major reference path
// (Options.SeqOracle), at every GOMAXPROCS, under both sanitize
// policies, and on the degraded FixedKNN ablation. One byte of drift
// here means a scheduling or accumulation-order leak.
func TestDetectSeqOracleDifferential(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	// Poison a few points so the sanitize policies have work to do and
	// Interpolate vs Drop genuinely produce different candidate sets.
	vals := append([]float64(nil), s.Values...)
	vals[137] = math.NaN()
	vals[901] = math.Inf(1)

	cases := []struct {
		name string
		opts Options
	}{
		{"default", Options{Seed: 1}},
		{"interpolate", Options{Seed: 1, Sanitize: sanitize.Interpolate}},
		{"drop", Options{Seed: 1, Sanitize: sanitize.Drop}},
		{"fixed-knn", Options{Seed: 1, Strategy: core.FixedKNN}},
		{"degraded", Options{Seed: 1, DegradeCandidates: 4}},
		{"seed-42", Options{Seed: 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.opts
			seq.SeqOracle = true
			want := fingerprint(New(seq).Detect(vals))
			if tc.name == "degraded" && !bytes.Contains([]byte(want), []byte("degraded=true")) {
				t.Fatalf("degraded case did not degrade:\n%s", want)
			}
			for _, procs := range []int{1, 2, 8} {
				prev := runtime.GOMAXPROCS(procs)
				got := fingerprint(New(tc.opts).Detect(vals))
				runtime.GOMAXPROCS(prev)
				if got != want {
					t.Fatalf("GOMAXPROCS=%d diverged from sequential oracle:\n--- oracle\n%s--- fast\n%s",
						procs, want, got)
				}
			}
		})
	}
}

// TestDetectInteractiveSeqOracleDifferential extends the differential
// contract through the active-learning loop: the interactive retraining
// rounds reuse the batch scratch buffers round over round, so any stale
// state there would first surface here.
func TestDetectInteractiveSeqOracleDifferential(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	oracle := func(i int) Label {
		if i%3 == 0 {
			return SingleAnomaly
		}
		return Normal
	}
	seq := fingerprint(New(Options{Seed: 1, SeqOracle: true}).DetectInteractive(s.Values, oracle))
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		got := fingerprint(New(Options{Seed: 1}).DetectInteractive(s.Values, oracle))
		runtime.GOMAXPROCS(prev)
		if got != seq {
			t.Fatalf("GOMAXPROCS=%d interactive run diverged from sequential oracle:\n--- oracle\n%s--- fast\n%s",
				procs, seq, got)
		}
	}
}

// TestDetectDeterministicWithRecorder verifies that attaching a metrics
// recorder does not perturb detections (observability must be read-only
// with respect to the pipeline's decisions).
func TestDetectDeterministicWithRecorder(t *testing.T) {
	s := synth.YahooLike(100, 2000)
	plain := fingerprint(New(Options{Seed: 1}).Detect(s.Values))
	instrumented := fingerprint(New(Options{Seed: 1, Obs: NewRecorder()}).Detect(s.Values))
	if plain != instrumented {
		t.Fatalf("recorder changed detections:\n--- nil\n%s--- recorder\n%s", plain, instrumented)
	}
}
