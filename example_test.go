package cabd_test

import (
	"fmt"
	"math"
	"math/rand"

	"cabd"
)

// A realistic series with one obvious sensor error and one real level
// shift.
func demo() []float64 {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 400)
	ar := 0.0
	for i := range values {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		values[i] = 10 + 2*math.Sin(2*math.Pi*float64(i)/80) + ar
	}
	values[100] += 25 // sensor error
	for i := 300; i < 400; i++ {
		values[i] += 8 // real event: the level steps up
	}
	return values
}

func ExampleDetector_Detect() {
	det := cabd.New(cabd.Options{})
	res := det.Detect(demo())
	errorFound, eventFound := false, false
	for _, d := range res.Anomalies {
		if d.Index == 100 {
			errorFound = true
		}
	}
	for _, d := range res.ChangePoints {
		if d.Index >= 298 && d.Index <= 302 {
			eventFound = true
		}
	}
	fmt.Println("error detected:", errorFound)
	fmt.Println("event detected:", eventFound)
	// Output:
	// error detected: true
	// event detected: true
}

func ExampleDetector_DetectInteractive() {
	det := cabd.New(cabd.Options{})
	res := det.DetectInteractive(demo(), func(i int) cabd.Label {
		switch {
		case i == 100:
			return cabd.SingleAnomaly
		case i >= 299 && i <= 301:
			return cabd.ChangePoint
		default:
			return cabd.Normal
		}
	})
	for _, d := range res.Anomalies {
		fmt.Println("error at", d.Index)
	}
	for _, d := range res.ChangePoints {
		// The detected boundary lands within a point of the shift.
		fmt.Println("event near 300:", d.Index >= 299 && d.Index <= 301)
	}
	// Output:
	// error at 100
	// event near 300: true
}

func ExampleMultiDetector_Detect() {
	// Two synchronized sensors with measurement noise; a fault at t=200
	// hits both.
	n := 500
	rng := rand.New(rand.NewSource(11))
	temp := make([]float64, n)
	vib := make([]float64, n)
	for i := 0; i < n; i++ {
		phase := 2 * math.Pi * float64(i) / 100
		temp[i] = 60 + 8*math.Sin(phase) + 0.05*math.Cos(7*phase) + 0.2*rng.NormFloat64()
		vib[i] = 2 + 0.5*math.Sin(phase) + 0.01*math.Sin(13*phase) + 0.02*rng.NormFloat64()
	}
	temp[200] += 30
	vib[200] += 5

	res := cabd.NewMulti(cabd.Options{}).Detect([][]float64{temp, vib})
	for _, d := range res.Anomalies {
		if d.Index == 200 {
			fmt.Println("fault detected at 200")
		}
	}
	// Output:
	// fault detected at 200
}

func ExampleStreamDetector() {
	rng := rand.New(rand.NewSource(11))
	det := cabd.NewStream(cabd.StreamConfig{Window: 300, Hop: 50})
	for i := 0; i < 900; i++ {
		v := 10 + 3*math.Sin(2*math.Pi*float64(i)/80) +
			0.2*math.Sin(2*math.Pi*float64(i)/7) + 0.15*rng.NormFloat64()
		if i == 500 {
			v += 25 // a glitch in the feed
		}
		for _, d := range det.Push(v) {
			if d.Index == 500 {
				fmt.Println("glitch detected online at 500")
			}
		}
	}
	det.Flush()
	// Output:
	// glitch detected online at 500
}
