// Robustness contract of the public facade: hostile input never panics,
// errors carry enough context to act on, cancellation is prompt, a batch
// survives its worst member, and degradation is visible on the Result.
package cabd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// noisy builds a jittery sine with a handful of strong spikes — enough
// structure for the detector to find candidates on every run.
func noisy(seed int64, n int, spikes ...int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
	}
	for _, i := range spikes {
		out[i] += 40
	}
	return out
}

func TestDetectEdgeCases(t *testing.T) {
	det := New(Options{})
	cases := []struct {
		name   string
		values []float64
		err    error
	}{
		{"nil", nil, ErrEmpty},
		{"empty", []float64{}, ErrEmpty},
		{"single point", []float64{3.14}, ErrTooShort},
		{"too short", []float64{1, 2, 3}, ErrTooShort},
		{"all NaN", []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}, ErrAllBad},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := det.DetectCtx(context.Background(), tc.values)
			if !errors.Is(err, tc.err) {
				t.Fatalf("DetectCtx error = %v, want %v", err, tc.err)
			}
			if res == nil || res.Sanitize == nil {
				t.Fatal("error result must still carry a sanitize report")
			}
			// The legacy entry point swallows the error but must not crash
			// or return nil.
			if legacy := det.Detect(tc.values); legacy == nil || len(legacy.Anomalies) != 0 {
				t.Fatal("legacy Detect must return an empty non-nil result")
			}
		})
	}

	t.Run("all identical", func(t *testing.T) {
		flat := make([]float64, 100)
		for i := range flat {
			flat[i] = 42
		}
		res, err := det.DetectCtx(context.Background(), flat)
		if err != nil {
			t.Fatalf("constant series must not error: %v", err)
		}
		if !res.Sanitize.Constant {
			t.Error("sanitize report should flag the constant series")
		}
		if len(res.Anomalies)+len(res.ChangePoints) != 0 {
			t.Errorf("constant series produced %d detections", len(res.Anomalies)+len(res.ChangePoints))
		}
	})
}

func TestDetectBatchEdgeCases(t *testing.T) {
	det := New(Options{})
	good := noisy(1, 400, 200)
	batch := [][]float64{nil, {}, {1.5}, good}
	res, errs := det.DetectBatchCtx(context.Background(), batch)
	if len(res) != len(batch) || len(errs) != len(batch) {
		t.Fatalf("misaligned output: %d results, %d errors for %d series", len(res), len(errs), len(batch))
	}
	for i, want := range []error{ErrEmpty, ErrEmpty, ErrTooShort, nil} {
		if !errors.Is(errs[i], want) {
			t.Errorf("series %d: error = %v, want %v", i, errs[i], want)
		}
		if res[i] == nil {
			t.Errorf("series %d: nil result", i)
		}
	}
	if len(res[3].Anomalies) == 0 {
		t.Error("good series in a hostile batch found nothing")
	}

	// Zero-length batch is a no-op, not a deadlock.
	if r, e := det.DetectBatchCtx(context.Background(), nil); len(r) != 0 || len(e) != 0 {
		t.Error("nil batch must return empty slices")
	}
}

func TestDetectMultiEdgeCases(t *testing.T) {
	det := NewMulti(Options{})
	ctx := context.Background()

	if _, err := det.DetectCtx(ctx, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil dims: %v, want ErrEmpty", err)
	}
	if _, err := det.DetectCtx(ctx, [][]float64{{}}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dim: %v, want ErrEmpty", err)
	}
	if _, err := det.DetectCtx(ctx, [][]float64{{1, 2, 3}, {1, 2}}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged dims: %v, want ErrRagged", err)
	}
	if _, err := det.DetectCtx(ctx, [][]float64{{7}}); !errors.Is(err, ErrTooShort) {
		t.Errorf("single point: %v, want ErrTooShort", err)
	}

	flat := [][]float64{make([]float64, 50), make([]float64, 50)}
	res, err := det.DetectCtx(ctx, flat)
	if err != nil {
		t.Fatalf("constant multivariate series must not error: %v", err)
	}
	if !res.Sanitize.Constant {
		t.Error("sanitize report should flag constant dims")
	}
}

func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	det := New(Options{})
	values := noisy(2, 5000, 1000, 2500, 4000)

	start := time.Now()
	_, err := det.DetectCtx(ctx, values)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectCtx on cancelled context = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", el)
	}

	mdet := NewMulti(Options{})
	if _, err := mdet.DetectCtx(ctx, [][]float64{values, values}); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi DetectCtx on cancelled context = %v, want context.Canceled", err)
	}

	_, errs := det.DetectBatchCtx(ctx, [][]float64{values, values})
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("batch series %d on cancelled context: %v, want context.Canceled", i, e)
		}
	}
}

func TestCandidateBoundDegradation(t *testing.T) {
	det := New(Options{DegradeCandidates: 1})
	res, err := det.DetectCtx(context.Background(), noisy(3, 800, 100, 400, 700))
	if err != nil {
		t.Fatalf("DetectCtx: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected candidate-bound degradation with DegradeCandidates=1")
	}
	if res.Strategy != FixedKNN {
		t.Errorf("degraded strategy = %v, want FixedKNN", res.Strategy)
	}
	if res.DegradeReason == "" {
		t.Error("degraded result must carry a reason")
	}
}

func TestPanicIsolationInteractive(t *testing.T) {
	det := New(Options{Confidence: 0.99, MaxQueries: 20})
	values := noisy(4, 600, 150, 300, 450)
	res, err := det.DetectInteractiveCtx(context.Background(), values, func(i int) Label {
		panic("labeler exploded")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
	if pe.Series != -1 {
		t.Errorf("non-batch panic Series = %d, want -1", pe.Series)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError must capture the stack")
	}
	if res == nil {
		t.Error("error result must be non-nil")
	}
}

func TestBatchIsolatesFailingSeries(t *testing.T) {
	det := New(Options{Sanitize: SanitizeReject})
	good1 := noisy(5, 400, 200)
	poisoned := noisy(6, 400, 200)
	poisoned[42] = math.NaN()
	good2 := noisy(7, 400, 200)

	res, errs := det.DetectBatchCtx(context.Background(), [][]float64{good1, poisoned, good2})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("clean series failed: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrBadValues) {
		t.Fatalf("poisoned series error = %v, want ErrBadValues", errs[1])
	}
	if res[1] == nil || res[1].Sanitize == nil || res[1].Sanitize.NaNs != 1 {
		t.Error("poisoned result must report the single NaN")
	}
	if len(res[0].Anomalies) == 0 || len(res[2].Anomalies) == 0 {
		t.Error("clean series in the batch must still detect")
	}
}

func TestSanitizeReportOnDetect(t *testing.T) {
	values := noisy(8, 500, 250)
	values[10], values[11] = math.NaN(), math.Inf(1)
	values[490] = 1e300

	res := New(Options{}).Detect(values)
	rep := res.Sanitize
	if rep == nil {
		t.Fatal("Detect result missing sanitize report")
	}
	if rep.NaNs != 1 || rep.Infs != 1 || rep.Extremes != 1 {
		t.Errorf("report counts nan=%d inf=%d extreme=%d, want 1/1/1", rep.NaNs, rep.Infs, rep.Extremes)
	}
	if len(rep.Repaired) != 3 || rep.Clean() {
		t.Errorf("report should list 3 repaired points: %s", rep)
	}
}

func TestDropPolicyRemapsIndices(t *testing.T) {
	const n, spike = 300, 150
	values := noisy(9, n, spike)
	dropped := map[int]bool{20: true, 21: true, 22: true, 80: true}
	for i := range dropped {
		values[i] = math.NaN()
	}

	res, err := New(Options{Sanitize: SanitizeDrop}).DetectCtx(context.Background(), values)
	if err != nil {
		t.Fatalf("DetectCtx: %v", err)
	}
	if len(res.Sanitize.Dropped) != len(dropped) {
		t.Fatalf("dropped %d points, want %d", len(res.Sanitize.Dropped), len(dropped))
	}
	all := append(res.AnomalyIndices(), res.ChangePointIndices()...)
	if len(all) == 0 {
		t.Fatal("spiked series produced no detections")
	}
	found := false
	for _, i := range all {
		if i < 0 || i >= n {
			t.Errorf("index %d outside the original layout [0, %d)", i, n)
		}
		if dropped[i] {
			t.Errorf("index %d points at a dropped position", i)
		}
		if i == spike {
			found = true
		}
	}
	if !found {
		t.Errorf("spike at original index %d not among detections %v", spike, all)
	}
}
