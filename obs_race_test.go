package cabd

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"cabd/internal/obs"
)

// TestRecorderSharedAcrossPipelines hammers one Recorder from three sides
// at once — batch detection workers, a streaming detector's pushes, and
// exporters snapshotting mid-flight — and then checks the aggregate
// counters. Run under `go test -race` (CI does) this doubles as the data
// race proof for the whole observability layer.
func TestRecorderSharedAcrossPipelines(t *testing.T) {
	rec := NewRecorder()
	opts := Options{Seed: 1, Obs: rec}

	series := make([]float64, 400)
	for i := range series {
		series[i] = float64(i%23) + 0.1*float64(i%7)
	}
	batch := make([][]float64, 8)
	for i := range batch {
		batch[i] = series
	}

	done := make(chan struct{})
	var producers, exporter sync.WaitGroup

	producers.Add(1)
	go func() {
		defer producers.Done()
		out, errs := New(opts).DetectBatchCtx(context.Background(), batch)
		for i := range out {
			if out[i] == nil {
				t.Errorf("nil hole at batch result %d", i)
			}
			if errs[i] != nil {
				t.Errorf("batch series %d failed: %v", i, errs[i])
			}
		}
	}()

	producers.Add(1)
	go func() {
		defer producers.Done()
		sd := NewStream(StreamConfig{Window: 128, Options: opts})
		for i := 0; i < 1000; i++ {
			v := series[i%len(series)]
			if i%97 == 96 {
				v = math.NaN()
			}
			sd.Push(v)
		}
		sd.Flush()
		if sd.Bad() == 0 {
			t.Error("stream intercepted no bad values")
		}
	}()

	// Exporters race with the writers until both pipelines finish.
	exporter.Add(1)
	go func() {
		defer exporter.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := rec.Snapshot()
			if len(snap.Counters) == 0 {
				t.Error("snapshot lost its counter map")
				return
			}
			var buf bytes.Buffer
			if err := rec.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	producers.Wait()
	close(done)
	exporter.Wait()

	if got := rec.Count(obs.CounterBatchSeries); got != 8 {
		t.Errorf("batch_series_total = %d, want 8", got)
	}
	if got := rec.Count(obs.CounterBatchFailures); got != 0 {
		t.Errorf("batch_failures_total = %d, want 0", got)
	}
	if got := rec.Count(obs.CounterBadStreamValues); got == 0 {
		t.Error("bad_stream_values_total = 0, want > 0")
	}
	if got := rec.GaugeValue(obs.GaugeBatchInFlight); got != 0 {
		t.Errorf("batch_in_flight = %d after drain, want 0", got)
	}
	if got := rec.GaugeValue(obs.GaugeStreamWindow); got == 0 {
		t.Error("stream_window gauge never set")
	}

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{
		"cabd_batch_series_total 8",
		"cabd_bad_stream_values_total",
		"cabd_stage_duration_seconds",
	} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("Prometheus exposition missing %q:\n%s", metric, buf.String())
		}
	}
}
