// Multivariate detection — the paper's future-work direction, shipped:
// three sensors of one machine (temperature, vibration, current) share a
// load cycle; a fault shows up across all of them, a single-sensor glitch
// in only one, and a set-point change shifts the regime for good. The
// joint-space INN tells the three situations apart.
//
//	go run ./examples/multivariate
package main

import (
	"fmt"
	"math"
	"math/rand"

	"cabd"
)

func main() {
	const n = 1500
	rng := rand.New(rand.NewSource(21))
	load := make([]float64, n)
	ar := 0.0
	for i := range load {
		ar = 0.8*ar + rng.NormFloat64()*0.05
		load[i] = math.Sin(2*math.Pi*float64(i)/250) + ar
	}
	temp := make([]float64, n)
	vib := make([]float64, n)
	amp := make([]float64, n)
	for i := range load {
		temp[i] = 60 + 8*load[i] + rng.NormFloat64()*0.3
		vib[i] = 2 + 0.5*load[i] + rng.NormFloat64()*0.05
		amp[i] = 12 + 3*load[i] + rng.NormFloat64()*0.1
	}
	// A machine fault at 600: every sensor reacts for a few samples.
	for i := 600; i < 605; i++ {
		temp[i] += 25
		vib[i] += 4
		amp[i] += 10
	}
	// A glitch of the vibration sensor alone at 950.
	vib[950] += 6
	// A set-point change at 1200: the current steps up and stays.
	for i := 1200; i < n; i++ {
		amp[i] += 8
	}

	det := cabd.NewMulti(cabd.Options{})
	res := det.DetectInteractive([][]float64{temp, vib, amp}, func(i int) cabd.Label {
		switch {
		case i >= 600 && i < 605:
			return cabd.CollectiveAnomaly
		case i == 950:
			return cabd.SingleAnomaly
		case i >= 1199 && i <= 1201:
			return cabd.ChangePoint
		default:
			return cabd.Normal
		}
	})

	fmt.Printf("3 sensors x %d samples, %d labels asked\n\n", n, res.Queries)
	fmt.Println("errors:")
	for _, d := range res.Anomalies {
		fmt.Printf("  t=%4d  %-19s confidence %.2f\n", d.Index, d.Subtype, d.Confidence)
	}
	fmt.Println("events:")
	for _, d := range res.ChangePoints {
		fmt.Printf("  t=%4d  %-19s confidence %.2f\n", d.Index, d.Subtype, d.Confidence)
	}
}
