// Quickstart: detect anomalies and change points in a synthetic sensor
// series with the public cabd API — no parameters to tune, no labels
// required.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"cabd"
)

func main() {
	// A day of 1-minute readings: smooth daily cycle plus sensor noise.
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 1440)
	ar := 0.0
	for i := range values {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		values[i] = 20 + 4*math.Sin(2*math.Pi*float64(i)/480) + ar
	}
	// Three sensor errors...
	values[300] += 25 // a ghost reading
	values[700] -= 30 // a lost echo
	for i := 1000; i < 1005; i++ {
		values[i] = 55 // a stuck sensor
	}
	// ...and one real event: the monitored process steps up at 1200.
	for i := 1200; i < len(values); i++ {
		values[i] += 10
	}

	det := cabd.New(cabd.Options{})

	// Fully unsupervised: errors come out cleanly, events are noisier.
	res := det.Detect(values)
	report("Unsupervised", res)

	// The paper's headline: a handful of labels sharpens everything.
	// Any labeling function works — a UI prompt, a rule, or (here) the
	// ground truth we injected above.
	truth := func(i int) cabd.Label {
		switch {
		case i == 300 || i == 700:
			return cabd.SingleAnomaly
		case i >= 1000 && i < 1005:
			return cabd.CollectiveAnomaly
		case i >= 1199 && i <= 1201:
			return cabd.ChangePoint
		default:
			return cabd.Normal
		}
	}
	res = det.DetectInteractive(values, truth)
	fmt.Println()
	report(fmt.Sprintf("With %d labels", res.Queries), res)
}

func report(title string, res *cabd.Result) {
	fmt.Printf("%s — errors (to fix or drop):\n", title)
	for _, d := range res.Anomalies {
		fmt.Printf("  index %4d  %-19s confidence %.2f\n", d.Index, d.Subtype, d.Confidence)
	}
	fmt.Printf("%s — events (to preserve):\n", title)
	for _, d := range res.ChangePoints {
		fmt.Printf("  index %4d  %-19s confidence %.2f\n", d.Index, d.Subtype, d.Confidence)
	}
}
