// Streaming detection: observations arrive one at a time (an IoT gateway
// relaying sensor readings); detections are emitted online with bounded
// latency instead of after the fact. This mirrors the production setting
// the paper's prototype ran in.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math/rand"

	"cabd"
)

func main() {
	det := cabd.NewStream(cabd.StreamConfig{
		Window: 720, // analyze the last ~month of hourly readings
		Hop:    48,  // re-analyze every two days of data
	})

	rng := rand.New(rand.NewSource(13))
	level := 80.0
	emitted := 0
	for hour := 0; hour < 4000; hour++ {
		// Tank physics: drain plus refills, with occasional glitches.
		level -= 0.65 * (0.8 + 0.4*rng.Float64())
		if level < 15 && rng.Float64() < 0.3 {
			level += 60
		}
		reading := level + 0.4*rng.NormFloat64()
		if rng.Float64() < 0.004 {
			reading = 2 + rng.Float64() // lost echo glitch
		}

		for _, d := range det.Push(reading) {
			emitted++
			fmt.Printf("hour %4d: %-19s confidence %.2f (reported at hour %d, lag %d)\n",
				d.Index, d.Subtype, d.Confidence, hour, hour-d.Index)
		}
	}
	for _, d := range det.Flush() {
		emitted++
		fmt.Printf("hour %4d: %-19s confidence %.2f (reported at end of stream)\n",
			d.Index, d.Subtype, d.Confidence)
	}
	fmt.Printf("\n%d observations processed, %d detections emitted online\n",
		det.Total(), emitted)
}
