// Active-learning walkthrough: how the required confidence γ trades
// labels for quality (Figures 5-6 of the paper), using a programmatic
// labeler over a series with known ground truth. The example prints, for
// each γ, the number of labels the detector asked for and the resulting
// error- and event-detection quality.
//
//	go run ./examples/active_learning
package main

import (
	"fmt"

	"cabd"
	"cabd/internal/eval"
	"cabd/internal/synth"
)

func main() {
	// A synthetic relation with 5% of points abnormal, like the paper's
	// ds-* suite.
	s := synth.Generate(synth.Config{
		N: 2000, Seed: 42,
		SingleFrac:     0.01,
		CollectiveFrac: 0.03,
		ChangeFrac:     0.01,
	})
	truth := func(i int) cabd.Label { return cabd.Label(s.LabelAt(i)) }
	total := len(s.AnomalyIndices()) + len(s.ChangePointIndices())

	fmt.Printf("series: %d points, %d anomalous, %d change points\n\n",
		s.Len(), len(s.AnomalyIndices()), len(s.ChangePointIndices()))
	fmt.Printf("%6s %8s %10s %10s %8s\n", "γ", "labels", "error F1", "event F1", "BNF")
	for _, gamma := range []float64{0, 0.5, 0.7, 0.8, 0.9, 0.95} {
		var res *cabd.Result
		labels := 0
		if gamma == 0 {
			// γ = 0: purely unsupervised baseline row.
			res = cabd.New(cabd.Options{}).Detect(s.Values)
		} else {
			det := cabd.New(cabd.Options{Confidence: gamma, MaxQueries: 400})
			res = det.DetectInteractive(s.Values, func(i int) cabd.Label {
				labels++
				return truth(i)
			})
		}
		ap := eval.Match(res.AnomalyIndices(), s.AnomalyIndices(), 2)
		cp := eval.Match(res.ChangePointIndices(), s.ChangePointIndices(), 2)
		fmt.Printf("%6.2f %8d %10.2f %10.2f %8.2f\n",
			gamma, labels, ap.F1, cp.F1, eval.BNF(labels, total))
	}
	fmt.Println("\nhigher γ asks for more labels and buys more quality;")
	fmt.Println("BNF = 1 - labels/abnormal-points is the saving vs labeling everything.")
}
