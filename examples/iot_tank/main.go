// The Figure 1 scenario end to end: an ultrasonic sensor monitors a
// liquid tank; the level drains slowly and jumps at each refill. Sensor
// glitches (ghost and lost echoes, stuck readings) are errors to remove;
// refills are events to preserve. This example renders the series as an
// ASCII strip chart with the detections marked, the way Figure 1 marks
// points 1-5.
//
//	go run ./examples/iot_tank
package main

import (
	"fmt"
	"strings"

	"cabd"
	"cabd/internal/synth"
)

func main() {
	tank := synth.IoTTank(3, 720) // a month of hourly readings
	det := cabd.New(cabd.Options{})

	// Interactive detection with the recorded ground truth standing in
	// for the tank operator (the company labeled fillings/errors in the
	// paper's dataset the same way).
	res := det.DetectInteractive(tank.Values, func(i int) cabd.Label {
		return cabd.Label(tank.LabelAt(i))
	})

	anoms := map[int]bool{}
	for _, d := range res.Anomalies {
		anoms[d.Index] = true
	}
	changes := map[int]bool{}
	for _, d := range res.ChangePoints {
		changes[d.Index] = true
	}

	fmt.Printf("tank level over %d hours — %d errors, %d refill events, %d labels asked\n\n",
		tank.Len(), len(res.Anomalies), len(res.ChangePoints), res.Queries)
	plot(tank.Values, anoms, changes)
	fmt.Println("\nlegend: '*' level, 'E' detected error, 'R' detected refill event")

	fmt.Println("\ndetections:")
	for _, d := range res.Anomalies {
		fmt.Printf("  hour %4d  error   (%s, confidence %.2f)\n", d.Index, d.Subtype, d.Confidence)
	}
	for _, d := range res.ChangePoints {
		fmt.Printf("  hour %4d  refill  (confidence %.2f)\n", d.Index, d.Confidence)
	}
}

// plot renders a coarse strip chart: one column per bucket of hours, rows
// spanning the value range.
func plot(vals []float64, anoms, changes map[int]bool) {
	const cols, rows = 96, 14
	n := len(vals)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	put := func(i int, v float64, ch byte) {
		c := i * cols / n
		r := rows - 1 - int((v-lo)/(hi-lo)*float64(rows-1))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		// Markers beat plain points.
		if grid[r][c] == ' ' || ch != '*' {
			grid[r][c] = ch
		}
	}
	for i, v := range vals {
		put(i, v, '*')
	}
	for i := range vals {
		if anoms[i] {
			put(i, vals[i], 'E')
		}
		if changes[i] {
			put(i, vals[i], 'R')
		}
	}
	for _, row := range grid {
		fmt.Printf("  |%s|\n", row)
	}
}
