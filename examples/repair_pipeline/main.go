// Repair pipeline (Section V-G): CABD's detections and active-learning
// labels drive the IMR data-repairing algorithm. The same label budget
// placed at random repairs far worse — the Figure 14 result.
//
//	go run ./examples/repair_pipeline
package main

import (
	"fmt"
	"math/rand"

	"cabd"
	"cabd/internal/repair"
	"cabd/internal/stats"
	"cabd/internal/synth"
)

func main() {
	s := synth.Generate(synth.Config{
		N: 2000, Seed: 11,
		SingleFrac:     0.01,
		CollectiveFrac: 0.03,
		ChangeFrac:     0.01,
	})

	// Step 1: detect, collecting the labels the user provided along the
	// way (index -> true value, answered from the recorded truth).
	known := map[int]float64{}
	det := cabd.New(cabd.Options{})
	res := det.DetectInteractive(s.Values, func(i int) cabd.Label {
		known[i] = s.Truth[i]
		return cabd.Label(s.LabelAt(i))
	})

	// Step 2: repair the detected errors with IMR. Change points are
	// events — they stay untouched.
	guided := repair.IMR(s.Values, known, res.AnomalyIndices(), repair.IMRConfig{})

	// Control: the same number of labels placed uniformly at random,
	// with no dirty-point knowledge.
	rng := rand.New(rand.NewSource(99))
	randomKnown := map[int]float64{}
	for len(randomKnown) < len(known) {
		i := rng.Intn(s.Len())
		randomKnown[i] = s.Truth[i]
	}
	all := make([]int, s.Len())
	for i := range all {
		all[i] = i
	}
	random := repair.IMR(s.Values, randomKnown, all, repair.IMRConfig{})

	fmt.Printf("detected %d error points and %d events with %d labels (%.1f%% of data)\n\n",
		len(res.Anomalies), len(res.ChangePoints), res.Queries,
		100*float64(res.Queries)/float64(s.Len()))
	fmt.Printf("%-26s RMS vs truth\n", "")
	fmt.Printf("%-26s %8.3f\n", "dirty series", stats.RMS(s.Values, s.Truth))
	fmt.Printf("%-26s %8.3f\n", "IMR + CABD labeling", stats.RMS(guided, s.Truth))
	fmt.Printf("%-26s %8.3f\n", "IMR + random labeling", stats.RMS(random, s.Truth))
}
