package cabd

import "cabd/internal/obs"

// Recorder aggregates pipeline metrics: per-stage duration histograms,
// monotonic counters (candidates, oracle queries, degradations, contained
// panics, rank-memo hits/misses, batch and stream activity) and gauges.
// Install one on Options.Obs to instrument detection; a single recorder
// may be shared by any number of detectors, batch workers and streaming
// pushes. A nil recorder — the default — disables instrumentation with
// zero overhead: no clock reads, no allocations.
//
// Export the accumulated state with Recorder.WritePrometheus (text
// exposition), Recorder.Snapshot (JSON-friendly struct) or
// obs.PublishExpvar via the internal package.
type Recorder = obs.Recorder

// NewRecorder returns a Recorder on the wall clock.
func NewRecorder() *Recorder { return obs.New() }

// Clock abstracts time for span measurement; tests inject a fake clock
// to assert exact stage timings.
type Clock = obs.Clock

// NewRecorderWithClock returns a Recorder measuring spans with c.
func NewRecorderWithClock(c Clock) *Recorder { return obs.NewWithClock(c) }

// StageTimings is one run's per-stage wall time, attached to Result when
// Options.Obs carries a recorder.
type StageTimings = obs.StageTimings

// MetricsSnapshot is a point-in-time copy of a Recorder's state, suitable
// for JSON encoding.
type MetricsSnapshot = obs.Snapshot

// Pipeline stages, re-exported for reading StageTimings.
type Stage = obs.Stage

// Stage identifiers for StageTimings.Get.
const (
	StageSanitize    = obs.StageSanitize
	StageCandidates  = obs.StageCandidates
	StageINNScore    = obs.StageINNScore
	StageBootstrap   = obs.StageBootstrap
	StageClassify    = obs.StageClassify
	StageALRound     = obs.StageALRound
	StageAssemble    = obs.StageAssemble
	StageBatchSeries = obs.StageBatchSeries
)
