package cabd

import (
	"context"
	"fmt"
	"runtime/debug"

	"cabd/internal/core"
	"cabd/internal/obs"
	"cabd/internal/sanitize"
	"cabd/internal/series"
)

// SanitizePolicy selects how the entry points treat NaN, ±Inf and
// out-of-range values: repair by interpolation (the default), drop the
// bad points, or reject the series with an error. Set it on
// Options.Sanitize.
type SanitizePolicy = sanitize.Policy

// Sanitization policies.
const (
	SanitizeInterpolate = sanitize.Interpolate
	SanitizeDrop        = sanitize.Drop
	SanitizeReject      = sanitize.Reject
)

// ParseSanitizePolicy maps a flag string ("interpolate", "drop",
// "reject") to a SanitizePolicy.
func ParseSanitizePolicy(s string) (SanitizePolicy, error) { return sanitize.ParsePolicy(s) }

// SanitizeReport describes what input sanitization found and repaired;
// every detection result carries one.
type SanitizeReport = sanitize.Report

// Sanitization errors, returned by the Ctx entry points. Match with
// errors.Is.
var (
	// ErrEmpty reports a nil or zero-length series.
	ErrEmpty = sanitize.ErrEmpty
	// ErrTooShort reports a series below the detector's 4-point floor.
	ErrTooShort = sanitize.ErrTooShort
	// ErrBadValues reports NaN/Inf/out-of-range input under SanitizeReject.
	ErrBadValues = sanitize.ErrBadValues
	// ErrAllBad reports a series with no finite values at all.
	ErrAllBad = sanitize.ErrAllBad
	// ErrRagged reports multivariate dimensions of unequal length.
	ErrRagged = sanitize.ErrRagged
)

// PanicError wraps a panic recovered inside the detection pipeline. The
// facade entry points never propagate panics: a crashing series surfaces
// as a *PanicError and — in batch runs — fails only that series.
type PanicError struct {
	// Series is the batch position of the failing series, or -1 when
	// the panic happened outside a batch run.
	Series int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	if e.Series >= 0 {
		return fmt.Sprintf("cabd: panic detecting series %d: %v", e.Series, e.Value)
	}
	return fmt.Sprintf("cabd: panic during detection: %v", e.Value)
}

// safeRun isolates a pipeline invocation: a panic is recovered and
// surfaced as a *PanicError instead of crashing the process.
func safeRun(f func() (*core.Result, error)) (res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &PanicError{Series: -1, Value: p, Stack: debug.Stack()}
		}
	}()
	return f()
}

// sanitizeConfig derives the sanitize configuration from the resolved
// detector options.
func sanitizeConfig(opts Options) sanitize.Config {
	return sanitize.Config{Policy: opts.Sanitize}
}

// remap translates detection indices back to the caller's original
// layout when sanitization compacted the series (SanitizeDrop).
func remap(res *Result, index []int) {
	if index == nil {
		return
	}
	for i := range res.Anomalies {
		res.Anomalies[i].Index = index[res.Anomalies[i].Index]
	}
	for i := range res.ChangePoints {
		res.ChangePoints[i].Index = index[res.ChangePoints[i].Index]
	}
}

// DetectCtx is Detect with input sanitization surfaced and cancellation:
// the context is checked at every pipeline stage boundary (candidate
// estimation, INN scoring, every classifier training pass), so a
// cancelled or expired context returns ctx.Err() promptly. A context
// deadline additionally arms graceful degradation — when the measured
// scoring cost would overrun the remaining budget, the detector falls
// back to the cheaper FixedKNN neighborhood and records the downgrade on
// the Result.
//
// On error the returned Result is non-nil but empty except for its
// SanitizeReport, so callers can still log what the input looked like.
func (d *Detector) DetectCtx(ctx context.Context, values []float64) (*Result, error) {
	return d.detectCtx(ctx, values, nil)
}

// DetectInteractiveCtx is DetectInteractive with sanitization and
// cancellation; the context is also checked between active-learning
// rounds. Under SanitizeDrop the labeler still receives indices in the
// caller's original layout.
func (d *Detector) DetectInteractiveCtx(ctx context.Context, values []float64, label func(i int) Label) (*Result, error) {
	return d.detectCtx(ctx, values, label)
}

func (d *Detector) detectCtx(ctx context.Context, values []float64, label func(i int) Label) (*Result, error) {
	opts := d.inner.Options()
	t := opts.Obs.NewTrace()
	var clean []float64
	var index []int
	var rep *SanitizeReport
	var sanErr error
	t.Do(obs.StageSanitize, func() {
		clean, index, rep, sanErr = sanitize.Series(values, sanitizeConfig(opts))
	})
	if sanErr != nil {
		return &Result{Sanitize: rep, Stages: t.Timings()}, sanErr
	}
	var o core.Labeler
	if label != nil {
		o = labelerFunc(func(i int) Label {
			if index != nil {
				i = index[i]
			}
			return label(i)
		})
	}
	s := series.New("series", clean)
	cres, err := safeRun(func() (*core.Result, error) {
		if o != nil {
			return d.inner.DetectActiveCtx(ctx, s, o)
		}
		return d.inner.DetectCtx(ctx, s)
	})
	if err != nil {
		if _, ok := err.(*PanicError); ok {
			opts.Obs.Add(obs.CounterPanicsContained, 1)
		}
		return &Result{Sanitize: rep, Stages: t.Timings()}, err
	}
	out := convert(cres)
	out.Stages.Merge(t.Timings())
	out.Sanitize = rep
	remap(out, index)
	return out, nil
}
